// Elmore (RC) delay evaluation of routing trees.
//
// The paper (and its baselines) optimize *path length* as the delay proxy;
// its conclusion lists richer timing metrics as future work.  This module
// provides the standard first-order RC model used across EDA:
//
//   * every unit of wirelength contributes unit resistance r and unit
//     capacitance c (the capacitance split half-half across each segment),
//   * each sink adds a pin load, the driver adds a source resistance,
//   * Elmore delay of sink s = sum over tree edges e on the root->s path
//     of R(e) * (downstream capacitance seen from e, incl. half of e's own)
//     plus R_driver * C_total.
//
// bench_elmore uses this to check that Pareto-optimal trees under the
// paper's (w, d) objectives remain near-optimal under (w, Elmore) — the
// empirical justification for the path-length proxy.
#pragma once

#include <vector>

#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::timing {

/// Technology/driver parameters.  Units are arbitrary but consistent
/// (delay values come out in r*c length-squared units).
struct RcParams {
  double unit_res = 1.0;     ///< resistance per DBU of wire
  double unit_cap = 1.0;     ///< capacitance per DBU of wire
  double driver_res = 50.0;  ///< source driver resistance
  double sink_cap = 100.0;   ///< pin load per sink
};

/// Elmore delay of every node (index-aligned with the tree's nodes);
/// entries for Steiner nodes are the delays at those junctions.
std::vector<double> elmore_delays(const tree::RoutingTree& t,
                                  const RcParams& params = {});

/// Maximum Elmore delay over the sinks.
double max_elmore(const tree::RoutingTree& t, const RcParams& params = {});

/// Total capacitance the driver sees (wire + sink loads).
double total_load(const tree::RoutingTree& t, const RcParams& params = {});

/// Pearson correlation between two samples (used to report how well the
/// path-length proxy tracks Elmore delay across a tree population).
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace patlabor::timing
