#include "patlabor/timing/elmore.hpp"

#include <cmath>

namespace patlabor::timing {

using tree::RoutingTree;

std::vector<double> elmore_delays(const RoutingTree& t,
                                  const RcParams& params) {
  const std::size_t n = t.num_nodes();
  const auto ch = t.children();

  // Topological order (parents before children).
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    order.push_back(u);
    for (std::int32_t c : ch[u]) stack.push_back(static_cast<std::size_t>(c));
  }

  // Downstream capacitance per node: own pin load + subtree wire + loads.
  std::vector<double> cap(n, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t u = *it;
    if (u >= 1 && t.is_pin(u)) cap[u] += params.sink_cap;
    for (std::int32_t ci : ch[u]) {
      const auto c = static_cast<std::size_t>(ci);
      const double wire =
          static_cast<double>(geom::l1(t.node(c),
                                       t.node(static_cast<std::size_t>(
                                           t.parent(c))))) *
          params.unit_cap;
      cap[u] += cap[c] + wire;
    }
  }

  // Delay accumulation root-down: the driver charges the whole load, each
  // edge charges half its own capacitance plus everything below it.
  std::vector<double> delay(n, 0.0);
  delay[0] = params.driver_res * (cap[0]);
  for (std::size_t u : order) {
    for (std::int32_t ci : ch[u]) {
      const auto c = static_cast<std::size_t>(ci);
      const double len = static_cast<double>(geom::l1(t.node(c), t.node(u)));
      const double r = len * params.unit_res;
      const double half_wire_cap = 0.5 * len * params.unit_cap;
      delay[c] = delay[u] + r * (half_wire_cap + cap[c]);
    }
  }
  return delay;
}

double max_elmore(const RoutingTree& t, const RcParams& params) {
  const auto d = elmore_delays(t, params);
  double best = 0.0;
  for (std::size_t v = 1; v < t.num_pins(); ++v) best = std::max(best, d[v]);
  return best;
}

double total_load(const RoutingTree& t, const RcParams& params) {
  double cap = static_cast<double>(t.wirelength()) * params.unit_cap;
  cap += static_cast<double>(t.num_pins() - 1) * params.sink_cap;
  return cap;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double sa = 0, sb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
  }
  const double ma = sa / n, mb = sb / n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace patlabor::timing
