// Deprecated shim: route_batch is now a thin wrapper over the engine (see
// engine/engine.hpp), kept for one release so existing callers keep
// compiling.  It is compiled into pl_engine (not pl_core) because the
// implementation depends on engine::Engine while pl_engine links pl_core.
#include "patlabor/core/batch.hpp"

#include <utility>

#include "patlabor/engine/engine.hpp"
#include "patlabor/obs/obs.hpp"

namespace patlabor::core {

std::vector<PatLaborResult> route_batch(std::span<const geom::Net> nets,
                                        const BatchOptions& options) {
  PL_SPAN("core.route_batch");
  PL_COUNT("batch.nets", nets.size());

  engine::EngineOptions eopt;
  eopt.lambda = options.route.lambda;
  eopt.table = options.route.table;
  eopt.policy = options.route.policy;
  eopt.iteration_factor = options.route.iteration_factor;
  eopt.refine = options.route.refine;
  eopt.jobs = options.jobs;
  const engine::Engine eng(eopt);

  std::vector<engine::RouteResponse> responses =
      eng.route_batch(nets, engine::RouteRequest{});

  std::vector<PatLaborResult> out;
  out.reserve(responses.size());
  for (engine::RouteResponse& r : responses)
    out.push_back(PatLaborResult{std::move(r.frontier), std::move(r.trees),
                                 r.iterations});
  return out;
}

}  // namespace patlabor::core
