#include "patlabor/core/batch.hpp"

#include <memory>

#include "patlabor/obs/obs.hpp"

namespace patlabor::core {

std::vector<PatLaborResult> route_batch(std::span<const geom::Net> nets,
                                        const BatchOptions& options) {
  PL_SPAN("core.route_batch");
  PL_COUNT("batch.nets", nets.size());

  std::unique_ptr<par::ThreadPool> own;
  par::ThreadPool* pool = nullptr;
  if (options.jobs != 0) {
    own = std::make_unique<par::ThreadPool>(options.jobs);
    pool = own.get();
  }

  // The per-net local search shares the batch pool (cooperative draining
  // makes the nesting safe) instead of spawning a second layer of threads.
  PatLaborOptions per_net = options.route;
  per_net.pool = pool;

  return par::parallel_transform(
      nets.size(),
      [&](std::size_t i) {
        PL_SPAN("batch.route_net");
        return patlabor(nets[i], per_net);
      },
      pool);
}

}  // namespace patlabor::core
