#include "patlabor/core/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "patlabor/rsma/rsma.hpp"
#include "patlabor/rsmt/rsmt.hpp"
#include "patlabor/tree/refine.hpp"

namespace patlabor::core {

using geom::Net;
using geom::Point;
using pareto::Objective;
using tree::RoutingTree;

namespace {

Net random_instance(util::Rng& rng, std::size_t degree) {
  Net net;
  while (net.pins.size() < degree)
    net.pins.push_back(Point{rng.uniform_int(0, 100000),
                             rng.uniform_int(0, 100000)});
  return net;
}

/// One local-search rollout with (optionally noisy) selections; returns the
/// final hypervolume and appends the per-step chosen-vs-rest feature
/// differences of every selection it made.
double rollout(const Net& net, const Policy& policy,
               const TrainerOptions& opt, double noise, util::Rng& rng,
               std::vector<std::array<double, 4>>* diffs) {
  std::vector<RoutingTree> population{rsmt::rsmt(net)};
  const Objective ref{2 * population[0].wirelength() + 1,
                      2 * population[0].delay() + 1};
  const int iterations = static_cast<int>(net.degree() / opt.lambda);
  for (int it = 0; it < iterations; ++it) {
    // Worst-delay tree.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < population.size(); ++i)
      if (population[i].delay() > population[pick].delay()) pick = i;
    const RoutingTree target = population[pick];

    const auto pins = noise > 0.0
                          ? policy.select_pins_noisy(target, opt.lambda - 1,
                                                     noise, rng)
                          : policy.select_pins(target, opt.lambda - 1);
    if (pins.empty()) break;
    if (diffs != nullptr) {
      // Record, for each selection step, chosen features minus the mean
      // features of the not-chosen pins at that step.
      std::vector<std::size_t> so_far;
      for (std::size_t chosen : pins) {
        std::array<double, 4> mean{};
        int count = 0;
        for (std::size_t p = 1; p < target.num_pins(); ++p) {
          if (p == chosen) continue;
          if (std::find(so_far.begin(), so_far.end(), p) != so_far.end())
            continue;
          const auto f = Policy::features(target, so_far, p);
          for (int k = 0; k < 4; ++k)
            mean[static_cast<std::size_t>(k)] += f[static_cast<std::size_t>(k)];
          ++count;
        }
        const auto fc = Policy::features(target, so_far, chosen);
        std::array<double, 4> diff{};
        for (int k = 0; k < 4; ++k) {
          const auto ku = static_cast<std::size_t>(k);
          diff[ku] = fc[ku] - (count > 0 ? mean[ku] / count : 0.0);
        }
        diffs->push_back(diff);
        so_far.push_back(chosen);
      }
    }

    Net subnet;
    subnet.pins.push_back(net.source());
    for (std::size_t p : pins) subnet.pins.push_back(target.node(p));
    auto [frontier, subs] = exact_small_frontier(subnet, opt.table);
    (void)frontier;
    for (const RoutingTree& sub : subs) {
      RoutingTree cand = regenerate_subtopology(target, pins, sub);
      if (!cand.validate().empty()) continue;
      tree::refine(cand, tree::RefineMode::kEither, 2);
      population.push_back(std::move(cand));
    }
    auto set = pareto::SolutionSet::select(tree::objectives(population));
    population = pareto::take_payload(set, std::move(population));
  }
  return pareto::hypervolume(tree::objectives(population), ref);
}

}  // namespace

TrainReport train_policy(const TrainerOptions& options) {
  TrainReport report;
  util::Rng rng(options.seed);
  PolicyParams current;  // warm start: defaults, refined per degree

  for (std::size_t degree = options.start_degree;
       degree <= options.end_degree; degree += options.degree_step) {
    Policy stage;
    stage.set_params(0, current);

    std::vector<std::array<double, 4>> good_diffs;
    double gain_sum = 0.0;
    int gain_count = 0;
    for (int inst = 0; inst < options.instances_per_degree; ++inst) {
      const Net net = random_instance(rng, degree);
      const double base_hv =
          rollout(net, stage, options, 0.0, rng, nullptr);

      std::vector<std::pair<double, std::vector<std::array<double, 4>>>>
          results;
      for (int r = 0; r < options.rollouts_per_instance; ++r) {
        std::vector<std::array<double, 4>> diffs;
        const double hv = rollout(net, stage, options,
                                  options.selection_noise, rng, &diffs);
        results.emplace_back(hv, std::move(diffs));
      }
      // Rollouts beating the deterministic policy are the "good" set the
      // regression imitates.
      for (auto& [hv, diffs] : results) {
        if (hv >= base_hv) {
          good_diffs.insert(good_diffs.end(), diffs.begin(), diffs.end());
          if (base_hv > 0.0) {
            gain_sum += hv / base_hv - 1.0;
            ++gain_count;
          }
        }
      }
    }

    if (!good_diffs.empty()) {
      // Fit: alpha proportional to the positive part of the mean feature
      // difference (maximizes the average score margin subject to
      // alpha >= 0), normalized so a1 + a2 = 2 like the defaults.
      std::array<double, 4> mean{};
      for (const auto& d : good_diffs)
        for (int k = 0; k < 4; ++k)
          mean[static_cast<std::size_t>(k)] += d[static_cast<std::size_t>(k)];
      for (auto& m : mean)
        m = std::max(0.0, m / static_cast<double>(good_diffs.size()));
      const double norm = mean[0] + mean[1];
      if (norm > 1e-12) {
        const double s = 2.0 / norm;
        const double lr = options.learn_rate;
        current.far_source = (1 - lr) * current.far_source + lr * mean[0] * s;
        current.far_tree = (1 - lr) * current.far_tree + lr * mean[1] * s;
        current.near_selected =
            (1 - lr) * current.near_selected + lr * mean[2] * s;
        current.hpwl = (1 - lr) * current.hpwl + lr * mean[3] * s;
      }
    }

    report.policy.set_params(degree, current);
    report.per_degree.push_back(DegreeTrainReport{
        degree, current,
        gain_count > 0 ? gain_sum / gain_count : 0.0});
  }
  return report;
}

}  // namespace patlabor::core
