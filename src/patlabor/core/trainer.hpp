// Policy training (Section V-B, Theorem 5): a policy-iteration-style
// procedure with a curriculum over net degree.
//
// For each degree n (starting at λ+1, warm-starting each degree from the
// previous one): sample random instances, run PatLabor-style local search
// with noise-perturbed pin selections, label the rollouts whose final
// Pareto hypervolume beats the median as "good", and fit the score weights
// by regressing toward the selections the good rollouts made (projected
// onto alpha >= 0, as the paper's score requires nonnegative weights).
#pragma once

#include <cstdint>
#include <vector>

#include "patlabor/core/patlabor.hpp"
#include "patlabor/core/policy.hpp"

namespace patlabor::core {

struct TrainerOptions {
  std::size_t lambda = 9;
  std::size_t start_degree = 10;   ///< the paper starts at λ + 1
  std::size_t end_degree = 40;     ///< the paper trains up to 100
  std::size_t degree_step = 10;    ///< curriculum stride
  int instances_per_degree = 6;
  int rollouts_per_instance = 8;
  double selection_noise = 0.35;
  double learn_rate = 0.5;         ///< blend toward the fitted weights
  std::uint64_t seed = 1;
  const lut::LookupTable* table = nullptr;
};

struct DegreeTrainReport {
  std::size_t degree = 0;
  PolicyParams params;
  double mean_hypervolume_gain = 0.0;  ///< good rollouts vs. baseline policy
};

struct TrainReport {
  Policy policy;
  std::vector<DegreeTrainReport> per_degree;
};

/// Trains the pin-selection policy; returns the trained policy plus a
/// per-degree report for the ablation bench.
TrainReport train_policy(const TrainerOptions& options = {});

}  // namespace patlabor::core
