// PatLabor (Section V): the practical Pareto optimizer for timing-driven
// routing trees.
//
//   * degree <= 9 (the paper's λ): the exact Pareto frontier, via the
//     lookup table when it covers the degree and the numeric Pareto-DW
//     otherwise (both exact; the table is just faster);
//   * degree > λ: Pareto local search — start from the RSMT (FLUTE role),
//     repeatedly pick the worst-delay tree in the maintained Pareto set,
//     select λ-1 pins with policy π, regenerate their sub-topology from
//     the lookup table, splice the regenerated subtree back in, refine
//     (SALT-style post-processing), and Pareto-merge the candidates.
#pragma once

#include <cstddef>
#include <vector>

#include "patlabor/core/policy.hpp"
#include "patlabor/lut/lut.hpp"
#include "patlabor/par/pool.hpp"
#include "patlabor/pareto/solution_set.hpp"
#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::core {

struct PatLaborOptions {
  /// The paper's λ: sub-problem size of the local search and the threshold
  /// below which the frontier is computed exactly.
  std::size_t lambda = 9;
  /// Optional lookup table; exact DW is used for uncovered degrees.
  const lut::LookupTable* table = nullptr;
  /// Pin-selection policy (defaults are the shipped trained parameters).
  Policy policy;
  /// Multiplier on the paper's floor(n / lambda) local-search iterations.
  /// The default of 2 gives the coverage rotation one full pass over the
  /// pins plus slack for revisiting the worst-delay trees.
  int iteration_factor = 2;
  /// Run SALT-style post-processing on regenerated candidates.
  bool refine = true;
  /// Pool for the parallel candidate evaluation of the local search
  /// (nullptr = the global pool).  The frontier is bit-identical for every
  /// pool size: candidates are evaluated concurrently but Pareto-merged in
  /// deterministic order.
  par::ThreadPool* pool = nullptr;
};

struct PatLaborResult {
  pareto::SolutionSet frontier;          ///< staircase invariant holds
  std::vector<tree::RoutingTree> trees;  ///< parallel to frontier
  int iterations = 0;                    ///< local-search iterations run
};

/// Runs PatLabor on a net of any degree.
PatLaborResult patlabor(const geom::Net& net,
                        const PatLaborOptions& options = {});

/// The uniform "frontier + realizing trees" carrier of the exact helpers
/// (one tree per staircase point, parallel to the set).
struct SmallFrontier {
  pareto::SolutionSet frontier;
  std::vector<tree::RoutingTree> trees;
};

/// Exact frontier helper shared by PatLabor, Pareto-KS and the policy
/// trainer: lookup-table query when the table covers the degree, numeric
/// Pareto-DW otherwise.
SmallFrontier exact_small_frontier(const geom::Net& net,
                                   const lut::LookupTable* table);

/// Reattachment policy for fragments orphaned by the subtree surgery.
enum class ReattachMode {
  kNearest,     ///< wirelength-greedy: attach at the closest point
  kDelayAware,  ///< delay-greedy: minimize path length through the anchor
};

/// The tree-surgery primitive of the local search (exposed for testing):
/// removes the minimal subtree of `t` spanning the source and `pins`,
/// replaces it with `subtopology` (a tree over those pins rooted at the
/// source), and re-attaches every orphaned fragment per `mode`.
tree::RoutingTree regenerate_subtopology(
    const tree::RoutingTree& t, const std::vector<std::size_t>& pins,
    const tree::RoutingTree& subtopology,
    ReattachMode mode = ReattachMode::kNearest);

}  // namespace patlabor::core
