// Multi-net batch routing: the "serve many nets" entry point.
//
// DEPRECATED: route_batch is now a thin shim over engine::Engine (see
// engine/engine.hpp), which additionally serves repeated net shapes from
// the canonicalization-keyed frontier cache and exposes every constructor
// through RouteRequest.  New callers should construct an Engine; this
// wrapper builds a throwaway one per call and will be removed after one
// release.
//
// route_batch fans the nets of a netlist out across the thread pool, one
// PatLabor run per net, and returns results in input order.  Every per-net
// run is independent (nets, options and the lookup table are read-only),
// so the output is bit-identical to routing the nets sequentially — and to
// any other --jobs setting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "patlabor/core/patlabor.hpp"
#include "patlabor/par/pool.hpp"

namespace patlabor::core {

struct BatchOptions {
  /// Per-net routing options (table, lambda, policy, ...).
  PatLaborOptions route;
  /// Parallelism: 0 uses the global pool (par::jobs()); any other value
  /// runs the batch on a private pool of that size.
  std::size_t jobs = 0;
};

/// Routes every net, in parallel, returning results in input order.
[[deprecated(
    "core::route_batch builds a throwaway engine per call; construct an "
    "engine::Engine and use Engine::route_batch instead")]]
std::vector<PatLaborResult> route_batch(std::span<const geom::Net> nets,
                                        const BatchOptions& options = {});

}  // namespace patlabor::core
