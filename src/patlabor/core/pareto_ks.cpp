#include "patlabor/core/pareto_ks.hpp"

#include <algorithm>
#include <cmath>

#include "patlabor/dw/pareto_dw.hpp"
#include "patlabor/obs/obs.hpp"

namespace patlabor::core {

using geom::Net;
using geom::Point;
using tree::RoutingTree;

namespace {

struct Recursor {
  const ParetoKsOptions& options;
  const Point global_source;

  /// Solves the sub-problem over `pins` (pins[0] is the sub-source) and
  /// returns a Pareto set of trees over exactly those pins.
  std::vector<RoutingTree> solve(std::vector<Point> pins, int depth) {
    Net sub;
    sub.pins = std::move(pins);
    if (sub.degree() <= options.leaf_size || sub.degree() <= 3) {
      PL_COUNT("ks.leaf_solves", 1);
      if (options.table != nullptr && options.table->covers(sub.degree()))
        return options.table->query(sub).trees;
      return dw::pareto_dw(sub).trees;
    }

    // Median split, alternating axes with depth (the paper divides "on the
    // x- or y-axis alternatively").  The median pin joins both halves so
    // the union of sub-trees is connected.
    std::vector<Point> pts = std::move(sub.pins);
    const bool split_x = depth % 2 == 0;
    std::sort(pts.begin(), pts.end(), [&](const Point& a, const Point& b) {
      return split_x ? (a.x != b.x ? a.x < b.x : a.y < b.y)
                     : (a.y != b.y ? a.y < b.y : a.x < b.x);
    });
    const std::size_t mid = pts.size() / 2;
    const Point median = pts[mid];
    std::vector<Point> left(pts.begin(),
                            pts.begin() + static_cast<std::ptrdiff_t>(mid));
    std::vector<Point> right(pts.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                             pts.end());
    left.push_back(median);
    right.push_back(median);

    // Each half's source: the pin closest to the global source r.
    auto with_source_first = [&](std::vector<Point> v) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < v.size(); ++i)
        if (geom::l1(v[i], global_source) < geom::l1(v[best], global_source))
          best = i;
      std::swap(v[0], v[best]);
      return v;
    };
    const auto s1 = solve(with_source_first(std::move(left)), depth + 1);
    const auto s2 = solve(with_source_first(std::move(right)), depth + 1);

    // Combine: union the edge sets of every (T1, T2) pairing (they share
    // the median pin, so the union is connected), Pareto-filter.
    Net merged;
    merged.pins = pts;  // sub-source below; pts[0] is arbitrary here
    // Restore this sub-problem's source order: closest pin to r first.
    merged.pins = with_source_first(std::move(merged.pins));

    std::vector<RoutingTree> combos;
    std::size_t budget = options.max_combinations;
    for (const RoutingTree& t1 : s1) {
      for (const RoutingTree& t2 : s2) {
        if (budget == 0) break;
        --budget;
        std::vector<std::pair<Point, Point>> edges;
        for (const RoutingTree* t : {&t1, &t2})
          for (std::size_t v = 1; v < t->num_nodes(); ++v)
            edges.emplace_back(
                t->node(v), t->node(static_cast<std::size_t>(t->parent(v))));
        RoutingTree u = RoutingTree::from_edges(merged, edges);
        if (!u.validate().empty()) continue;
        u.normalize();
        combos.push_back(std::move(u));
      }
    }
    auto set = pareto::SolutionSet::select(tree::objectives(combos));
    const std::size_t total = combos.size();
    std::vector<RoutingTree> kept = pareto::take_payload(set, std::move(combos));
    PL_COUNT("ks.combinations", total);
    PL_COUNT("ks.combinations_kept", kept.size());
    return kept;
  }
};

}  // namespace

ParetoKsResult pareto_ks(const Net& net, const ParetoKsOptions& options) {
  PL_SPAN("core.pareto_ks");
  ParetoKsOptions opt = options;
  if (opt.leaf_size == 0) {
    const double lg = std::log2(static_cast<double>(net.degree()));
    opt.leaf_size = static_cast<std::size_t>(std::max(4.0, std::floor(lg)));
  }
  opt.leaf_size = std::min<std::size_t>(opt.leaf_size, lut::kMaxLutDegree);

  Recursor rec{opt, net.source()};
  auto trees = rec.solve(net.pins, 0);

  // The recursion's per-level delay accounting is relative to sub-sources;
  // re-evaluate against the true source and filter once more.
  ParetoKsResult result;
  std::sort(trees.begin(), trees.end(),
            [](const RoutingTree& a, const RoutingTree& b) {
              return a.objective() < b.objective();
            });
  result.frontier = pareto::SolutionSet::select(tree::objectives(trees));
  result.trees = pareto::take_payload(result.frontier, std::move(trees));
  return result;
}

}  // namespace patlabor::core
