#include "patlabor/core/policy.hpp"

#include <algorithm>
#include <limits>

#include "patlabor/geom/box.hpp"

namespace patlabor::core {

using geom::Length;
using geom::Point;
using tree::RoutingTree;

void Policy::set_params(std::size_t degree, const PolicyParams& params) {
  buckets_[degree] = params;
}

const PolicyParams& Policy::params_for(std::size_t degree) const {
  auto it = buckets_.upper_bound(degree);
  // The largest bucket key <= degree; buckets_ always contains key 0.
  --it;
  return it->second;
}

std::vector<std::size_t> Policy::select(const RoutingTree& t,
                                        std::size_t count, double noise,
                                        util::Rng* rng,
                                        const std::vector<bool>* allowed) const {
  const std::size_t num_pins = t.num_pins();
  const PolicyParams& a = params_for(num_pins);
  const Point r = t.node(0);
  const auto pl = t.path_lengths();

  std::vector<std::size_t> selected;
  std::vector<Point> selected_pts{r};
  std::vector<bool> used(num_pins, false);
  // Scale for the noise term: the net's half-perimeter.
  std::vector<Point> pins;
  pins.reserve(num_pins);
  for (std::size_t v = 0; v < num_pins; ++v) pins.push_back(t.node(v));
  const double scale =
      std::max<double>(1.0, static_cast<double>(geom::hpwl(pins)));

  while (selected.size() < count && selected.size() + 1 < num_pins) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best = 0;
    for (std::size_t p = 1; p < num_pins; ++p) {
      if (used[p]) continue;
      if (allowed != nullptr && !(*allowed)[p]) continue;
      const Point pp = t.node(p);
      double min_sel = std::numeric_limits<double>::infinity();
      for (std::size_t s : selected)
        min_sel = std::min(
            min_sel, static_cast<double>(geom::l1(pp, t.node(s))));
      if (selected.empty()) min_sel = 0.0;  // paper: zero before any pick
      std::vector<Point> with_p = selected_pts;
      with_p.push_back(pp);
      const double hp =
          selected.empty() ? 0.0 : static_cast<double>(geom::hpwl(with_p));
      double score = a.far_source * static_cast<double>(geom::l1(r, pp)) +
                     a.far_tree * static_cast<double>(pl[p]) -
                     a.near_selected * min_sel - a.hpwl * hp;
      if (rng != nullptr && noise > 0.0)
        score += noise * scale * (rng->uniform01() * 2.0 - 1.0);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    if (best == 0) break;  // no eligible pin remained
    used[best] = true;
    selected.push_back(best);
    selected_pts.push_back(t.node(best));
  }
  return selected;
}

std::array<double, 4> Policy::features(const RoutingTree& t,
                                       const std::vector<std::size_t>& selected,
                                       std::size_t p) {
  const Point r = t.node(0);
  const Point pp = t.node(p);
  const auto pl = t.path_lengths();
  double min_sel = 0.0;
  double hp = 0.0;
  if (!selected.empty()) {
    min_sel = std::numeric_limits<double>::infinity();
    std::vector<Point> pts{r};
    for (std::size_t s : selected) {
      min_sel =
          std::min(min_sel, static_cast<double>(geom::l1(pp, t.node(s))));
      pts.push_back(t.node(s));
    }
    pts.push_back(pp);
    hp = static_cast<double>(geom::hpwl(pts));
  }
  return {static_cast<double>(geom::l1(r, pp)), static_cast<double>(pl[p]),
          -min_sel, -hp};
}

std::vector<std::size_t> Policy::select_pins(
    const RoutingTree& t, std::size_t count,
    const std::vector<bool>* allowed) const {
  return select(t, count, 0.0, nullptr, allowed);
}

std::vector<std::size_t> Policy::select_pins_noisy(const RoutingTree& t,
                                                   std::size_t count,
                                                   double noise,
                                                   util::Rng& rng) const {
  return select(t, count, noise, &rng, nullptr);
}

}  // namespace patlabor::core
