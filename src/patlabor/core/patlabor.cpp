#include "patlabor/core/patlabor.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>

#include "patlabor/dw/pareto_dw.hpp"
#include "patlabor/obs/obs.hpp"
#include "patlabor/par/worker_context.hpp"
#include "patlabor/rsma/rsma.hpp"
#include "patlabor/rsmt/rsmt.hpp"
#include "patlabor/tree/refine.hpp"

namespace patlabor::core {

using geom::Length;
using geom::Net;
using geom::Point;
using pareto::Objective;
using tree::RoutingTree;

namespace {

/// Pareto-filters a tree population by objective, in place.  Selection
/// buffers come from the executing thread's WorkerContext, so steady-state
/// filtering reuses capacity instead of allocating per round.
void filter_population(std::vector<RoutingTree>& trees) {
  const std::size_t before = trees.size();
  auto& scratch = par::WorkerContext::current().get<pareto::FilterScratch>();
  auto set = pareto::SolutionSet::select(tree::objectives(trees), scratch);
  trees = pareto::take_payload(set, std::move(trees));
  PL_COUNT("search.trees_filtered", before - trees.size());
}

}  // namespace

RoutingTree regenerate_subtopology(const RoutingTree& t,
                                   const std::vector<std::size_t>& pins,
                                   const RoutingTree& subtopology,
                                   ReattachMode mode) {
  // A = {source} ∪ selected pins.
  std::vector<bool> in_a(t.num_nodes(), false);
  in_a[0] = true;
  for (std::size_t p : pins) in_a[p] = true;

  // cnt(v) = number of A nodes in subtree(v); the edge (v, parent) lies on
  // the minimal subtree spanning A iff cnt(v) >= 1 (the root side always
  // holds the source).
  const auto ch = t.children();
  std::vector<int> cnt(t.num_nodes(), 0);
  std::vector<std::size_t> order;
  order.reserve(t.num_nodes());
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    order.push_back(u);
    for (std::int32_t c : ch[u]) stack.push_back(static_cast<std::size_t>(c));
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t u = *it;
    if (in_a[u]) ++cnt[u];
    for (std::int32_t c : ch[u]) cnt[u] += cnt[static_cast<std::size_t>(c)];
  }

  // Edge pool: kept tree edges plus the regenerated sub-topology.
  std::vector<std::pair<Point, Point>> edges;
  for (std::size_t v = 1; v < t.num_nodes(); ++v)
    if (cnt[v] == 0)
      edges.emplace_back(t.node(v),
                         t.node(static_cast<std::size_t>(t.parent(v))));
  for (std::size_t w = 1; w < subtopology.num_nodes(); ++w)
    edges.emplace_back(
        subtopology.node(w),
        subtopology.node(static_cast<std::size_t>(subtopology.parent(w))));

  // Net view for the final tree: the original net's pins.
  Net net;
  net.pins.assign(t.nodes().begin(),
                  t.nodes().begin() + static_cast<std::ptrdiff_t>(t.num_pins()));

  // Connected components of the edge pool over interned points; the
  // component containing the source is the core, every other component
  // holding a pin is greedily re-attached at its nearest core point.
  std::map<Point, std::size_t> id;
  std::vector<Point> pts;
  auto intern = [&](const Point& p) {
    auto [it2, inserted] = id.emplace(p, pts.size());
    if (inserted) pts.push_back(p);
    return it2->second;
  };
  for (const Point& p : net.pins) intern(p);
  std::vector<std::size_t> parent_uf;
  auto find = [&](std::size_t x) {
    while (parent_uf[x] != x) x = parent_uf[x] = parent_uf[parent_uf[x]];
    return x;
  };
  for (const auto& [a, b] : edges) {
    intern(a);
    intern(b);
  }
  parent_uf.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) parent_uf[i] = i;
  for (const auto& [a, b] : edges) {
    const std::size_t ra = find(id[a]);
    const std::size_t rb = find(id[b]);
    if (ra != rb) parent_uf[ra] = rb;
  }

  // Pin-bearing components other than the core.
  std::vector<bool> has_pin(pts.size(), false);
  for (const Point& p : net.pins) has_pin[find(id[p])] = true;
  const std::size_t core_root = find(id[net.pins[0]]);

  std::vector<bool> in_core(pts.size(), false);
  for (std::size_t i = 0; i < pts.size(); ++i)
    in_core[i] = find(i) == core_root;

  // Path lengths of core points from the source over the current edge
  // pool (O(V^2) Dijkstra), used by the delay-aware anchor choice.
  auto core_path_lengths = [&]() {
    constexpr Length kUnreached = std::numeric_limits<Length>::max() / 4;
    std::vector<Length> dist(pts.size(), kUnreached);
    std::vector<std::vector<std::size_t>> adj(pts.size());
    for (const auto& [a, b] : edges) {
      adj[id[a]].push_back(id[b]);
      adj[id[b]].push_back(id[a]);
    }
    std::vector<bool> done(pts.size(), false);
    dist[id[net.pins[0]]] = 0;
    for (std::size_t round = 0; round < pts.size(); ++round) {
      std::size_t u = pts.size();
      Length best = kUnreached;
      for (std::size_t v = 0; v < pts.size(); ++v)
        if (!done[v] && dist[v] < best) {
          best = dist[v];
          u = v;
        }
      if (u == pts.size()) break;
      done[u] = true;
      for (std::size_t v : adj[u])
        dist[v] = std::min(dist[v], dist[u] + geom::l1(pts[u], pts[v]));
    }
    return dist;
  };

  while (true) {
    // Best (orphan point, core anchor) pair among pin-bearing orphans:
    // nearest pair, or — delay-aware — minimal anchor-path-plus-edge.
    std::vector<Length> pl;
    if (mode == ReattachMode::kDelayAware) pl = core_path_lengths();
    Length best = std::numeric_limits<Length>::max();
    std::size_t bo = 0, bc = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (in_core[i] || !has_pin[find(i)]) continue;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (!in_core[j]) continue;
        const Length d =
            geom::l1(pts[i], pts[j]) +
            (mode == ReattachMode::kDelayAware ? pl[j] : 0);
        if (d < best) {
          best = d;
          bo = i;
          bc = j;
        }
      }
    }
    if (best == std::numeric_limits<Length>::max()) break;
    edges.emplace_back(pts[bo], pts[bc]);
    const std::size_t orphan_root = find(bo);
    parent_uf[orphan_root] = find(bc);
    for (std::size_t i = 0; i < pts.size(); ++i)
      if (find(i) == find(bc)) in_core[i] = true;
  }

  RoutingTree result = RoutingTree::from_edges(net, edges);
  result.normalize();
  return result;
}

PatLaborResult patlabor(const Net& net, const PatLaborOptions& options) {
  PL_SPAN("core.patlabor");
  PatLaborResult result;
  const std::size_t n = net.degree();
  const std::size_t lambda =
      std::min<std::size_t>(options.lambda, lut::kMaxLutDegree);

  if (n <= lambda || n <= 3) {
    PL_COUNT("search.small_exact", 1);
    auto [frontier, trees] = exact_small_frontier(net, options.table);
    result.frontier = std::move(frontier);
    result.trees = std::move(trees);
    return result;
  }

  // ---- Local search (Section V-B) ----
  std::vector<RoutingTree> population;
  {
    PL_SPAN("search.seed");
    RoutingTree t0 = rsmt::rsmt(net);  // FLUTE's role
    // SALT-style post-processing of the seed gives the population its
    // starting Pareto diversity; the arborescence seed anchors the
    // min-delay corner of the curve (the local search then trades its
    // wirelength down).
    for (RoutingTree& v : tree::refined_variants(t0))
      population.push_back(std::move(v));
    population.push_back(std::move(t0));
    RoutingTree arb = rsma::rsma(net);
    tree::refine(arb, tree::RefineMode::kWirelength, 4);
    population.push_back(std::move(arb));
    filter_population(population);
  }
  std::unordered_set<std::uint64_t> expanded;
  // Coverage rotation: prefer pins not yet regenerated, so one pass of the
  // local search touches every pin (the Remark-1 "each pin once" regime),
  // then continue freely on the worst-delay trees.
  std::vector<bool> untouched(n, true);
  untouched[0] = false;
  std::size_t untouched_left = n - 1;

  const int iterations =
      options.iteration_factor * static_cast<int>(n / lambda);
  PL_SPAN("search.local_search");
  for (int it = 0; it < iterations; ++it) {
    PL_COUNT("search.rounds", 1);
    // Select the worst-delay tree not expanded yet.
    std::size_t pick = population.size();
    Length worst = -1;
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (expanded.count(population[i].structural_hash()) > 0) continue;
      const Length d = population[i].delay();
      if (d > worst) {
        worst = d;
        pick = i;
      }
    }
    if (pick == population.size()) break;  // every tree already expanded
    const RoutingTree target = population[pick];
    expanded.insert(target.structural_hash());
    ++result.iterations;

    const auto pins = options.policy.select_pins(
        target, lambda - 1,
        untouched_left >= lambda - 1 ? &untouched : nullptr);
    if (pins.empty()) break;
    for (std::size_t p : pins) {
      if (untouched[p]) {
        untouched[p] = false;
        --untouched_left;
      }
    }
    Net subnet;
    subnet.pins.push_back(net.source());
    for (std::size_t p : pins) subnet.pins.push_back(target.node(p));

    auto [sub_frontier, sub_trees] = [&] {
      PL_SPAN("search.subnet_solve");
      return exact_small_frontier(subnet, options.table);
    }();
    (void)sub_frontier;
    {
      PL_SPAN("search.reattach");
      // Candidate regenerations (one per sub-topology x reattach mode) are
      // independent: evaluate them across the pool, then fold the valid
      // ones into the population in index order.  The ordered reduction
      // keeps the population — and hence the frontier — bit-identical for
      // every pool size.
      constexpr ReattachMode kModes[] = {ReattachMode::kNearest,
                                         ReattachMode::kDelayAware};
      const std::size_t num_jobs = sub_trees.size() * std::size(kModes);
      auto candidates = par::parallel_transform(
          num_jobs,
          [&](std::size_t j) {
            const RoutingTree& sub = sub_trees[j / std::size(kModes)];
            const ReattachMode mode = kModes[j % std::size(kModes)];
            RoutingTree candidate =
                regenerate_subtopology(target, pins, sub, mode);
            if (!candidate.validate().empty()) {
              PL_COUNT("search.moves_rejected", 1);
              return std::optional<RoutingTree>();
            }
            if (options.refine)
              tree::refine(candidate, tree::RefineMode::kEither, 4);
            PL_COUNT("search.moves_accepted", 1);
            return std::optional<RoutingTree>(std::move(candidate));
          },
          options.pool);
      for (std::optional<RoutingTree>& c : candidates)
        if (c.has_value()) population.push_back(std::move(*c));
    }
    filter_population(population);
  }

  filter_population(population);
  std::sort(population.begin(), population.end(),
            [](const RoutingTree& a, const RoutingTree& b) {
              return a.objective() < b.objective();
            });
  // The population is nondominated and sorted by objective, so its
  // objectives are already a staircase.
  result.frontier =
      pareto::SolutionSet::adopt_staircase(tree::objectives(population));
  result.trees = std::move(population);
  return result;
}

SmallFrontier exact_small_frontier(const Net& net,
                                   const lut::LookupTable* table) {
  if (table != nullptr && table->covers(net.degree())) {
    auto q = table->query(net);
    return {std::move(q.frontier), std::move(q.trees)};
  }
  // A table that is present but too shallow for this degree is invisible to
  // query(); count the skip so the stats distinguish it from "no table".
  if (table != nullptr) PL_COUNT("lut.skipped_uncovered", 1);
  // Numeric DW runs in the local-search inner loop whenever the subnet
  // degree exceeds the table (lambda-pin subnets are degree lambda, tables
  // usually stop one short), so solver storage is reused per worker thread
  // — this is where the per-batch allocation count mostly came from.
  auto& scratch = par::WorkerContext::current().get<dw::DwScratch>();
  auto r = dw::pareto_dw(net, {}, &scratch);
  return {std::move(r.frontier), std::move(r.trees)};
}

}  // namespace patlabor::core
