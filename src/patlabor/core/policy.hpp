// The pin-selection policy π of Section V-B.
//
// In each local-search iteration PatLabor picks λ-1 pins of the current
// worst-delay tree and regenerates their sub-topology from the lookup
// table.  Pins are selected greedily by the paper's scoring function
//
//   score(p) = a1 * ||r - p||_1 + a2 * dist_T(r, p)
//            - a3 * min_selected ||p - p_k||_1 - a4 * HPWL(p, selected)
//
// (far-from-source pins drive delay; the negative terms keep the selection
// geometrically tight so the regenerated sub-topology is meaningful).
// Parameters are per-degree (curriculum-trained, Theorem 5); defaults were
// produced by core/trainer.hpp on random instances.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "patlabor/tree/routing_tree.hpp"
#include "patlabor/util/rng.hpp"

namespace patlabor::core {

/// The four nonnegative score weights (alpha_1..alpha_4 of the paper).
struct PolicyParams {
  double far_source = 1.0;    ///< a1: rectilinear distance from the source
  double far_tree = 1.0;      ///< a2: tree path length from the source
  double near_selected = 0.6; ///< a3: distance to the nearest selected pin
  double hpwl = 0.3;          ///< a4: HPWL of the selected set plus p

  std::array<double, 4> as_array() const {
    return {far_source, far_tree, near_selected, hpwl};
  }
};

class Policy {
 public:
  /// Policy with the shipped defaults for every degree.
  Policy() = default;

  /// Sets the parameters used for nets of degree >= `degree` (curriculum
  /// buckets; the largest bucket <= n wins).
  void set_params(std::size_t degree, const PolicyParams& params);

  /// Parameters effective for a degree-n net.
  const PolicyParams& params_for(std::size_t degree) const;

  /// Greedily selects `count` sink pins of tree t (net pins 1..num_pins-1)
  /// by descending score.  Returns pin indices into the net.  When
  /// `allowed` is non-null, only pins with allowed[p] == true are eligible
  /// (used by the local search's coverage rotation).
  std::vector<std::size_t> select_pins(
      const tree::RoutingTree& t, std::size_t count,
      const std::vector<bool>* allowed = nullptr) const;

  /// As select_pins, but scores are perturbed by `noise` * U(-1, 1) * scale
  /// — used by the trainer to explore selections.
  std::vector<std::size_t> select_pins_noisy(const tree::RoutingTree& t,
                                             std::size_t count, double noise,
                                             util::Rng& rng) const;

  /// The signed feature vector g(p | selected) such that
  /// score(p) = alpha . g  with alpha >= 0: (||r-p||, dist_T(r,p),
  /// -min-dist-to-selected, -HPWL(p, selected)).  Used by the trainer.
  static std::array<double, 4> features(const tree::RoutingTree& t,
                                        const std::vector<std::size_t>& selected,
                                        std::size_t p);

 private:
  std::vector<std::size_t> select(const tree::RoutingTree& t,
                                  std::size_t count, double noise,
                                  util::Rng* rng,
                                  const std::vector<bool>* allowed) const;

  /// Curriculum buckets: degree threshold -> params.
  std::map<std::size_t, PolicyParams> buckets_{{0, PolicyParams{}}};
};

}  // namespace patlabor::core
