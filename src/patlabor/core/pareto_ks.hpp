// Pareto-KS (Section IV-B): the polynomial-time approximation algorithm.
//
// A multi-objective extension of the Kalpakis-Sherman partitioning
// heuristic: recursively split the pin set at a median pin (alternating
// axes), solve leaves of size <= leaf_size exactly (lookup table / numeric
// Pareto-DW), and combine the children's Pareto sets of trees.  Theorem 4:
// O(sqrt(n / log n))-approximation of every frontier point in
// ~O(n^2 |S|^2) time.
#pragma once

#include <cstddef>
#include <vector>

#include "patlabor/lut/lut.hpp"
#include "patlabor/pareto/solution_set.hpp"
#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::core {

struct ParetoKsOptions {
  /// Leaf size for exact solving; the paper uses log n (Theorem 4) or the
  /// lookup-table λ (Remark 1).  0 = pick max(4, floor(log2 n)).
  std::size_t leaf_size = 0;
  /// Optional lookup table for the leaves.
  const lut::LookupTable* table = nullptr;
  /// Cap on |S1| x |S2| combinations per merge (keeps combination cost
  /// polynomial; the Pareto sets are small in practice, Theorem 2).
  std::size_t max_combinations = 256;
};

struct ParetoKsResult {
  pareto::SolutionSet frontier;
  std::vector<tree::RoutingTree> trees;
};

/// Runs Pareto-KS on a net of any degree.
ParetoKsResult pareto_ks(const geom::Net& net,
                         const ParetoKsOptions& options = {});

}  // namespace patlabor::core
