#include "patlabor/eval/metrics.hpp"

#include <cassert>

namespace patlabor::eval {

bool is_non_optimal(std::span<const pareto::Objective> true_frontier,
                    std::span<const pareto::Objective> found) {
  return pareto::count_covered(true_frontier, found) == 0;
}

std::size_t frontier_points_found(
    std::span<const pareto::Objective> true_frontier,
    std::span<const pareto::Objective> found) {
  return pareto::count_covered(true_frontier, found);
}

void OptimalityCounter::add(std::size_t degree,
                            std::span<const pareto::Objective> true_frontier,
                            std::span<const pareto::Objective> found) {
  Row& row = rows_[degree];
  ++row.nets;
  row.frontier_total += true_frontier.size();
  const std::size_t covered = pareto::count_covered(true_frontier, found);
  row.found += covered;
  if (covered == 0) ++row.non_optimal;
}

double OptimalityCounter::non_optimal_ratio(std::size_t degree) const {
  const auto it = rows_.find(degree);
  if (it == rows_.end() || it->second.nets == 0) return 0.0;
  return static_cast<double>(it->second.non_optimal) /
         static_cast<double>(it->second.nets);
}

void FrontierSizeStats::add(std::size_t degree, std::size_t frontier_size) {
  auto& m = max_[degree];
  m = std::max(m, frontier_size);
  auto& [sum, count] = sum_count_[degree];
  sum += static_cast<double>(frontier_size);
  ++count;
}

double FrontierSizeStats::mean(std::size_t degree) const {
  const auto it = sum_count_.find(degree);
  if (it == sum_count_.end() || it->second.second == 0) return 0.0;
  return it->second.first / static_cast<double>(it->second.second);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LineFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace patlabor::eval
