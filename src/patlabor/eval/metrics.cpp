#include "patlabor/eval/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace patlabor::eval {

pareto::Objective bbox_reference(const geom::Net& net) {
  geom::Coord min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  bool first = true;
  for (const geom::Point& p : net.pins) {
    if (first) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      first = false;
      continue;
    }
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const geom::Length half_perimeter =
      static_cast<geom::Length>(max_x - min_x) +
      static_cast<geom::Length>(max_y - min_y);
  const auto sinks =
      static_cast<geom::Length>(net.degree() > 0 ? net.degree() - 1 : 0);
  return pareto::Objective{sinks * half_perimeter, 2 * half_perimeter};
}

double net_hypervolume(std::span<const pareto::Objective> frontier,
                       const geom::Net& net) {
  const pareto::Objective ref = bbox_reference(net);
  const double area =
      static_cast<double>(ref.w) * static_cast<double>(ref.d);
  if (area <= 0.0 || frontier.empty()) return 0.0;
  return pareto::hypervolume(frontier, ref) / area;
}

bool is_non_optimal(std::span<const pareto::Objective> true_frontier,
                    std::span<const pareto::Objective> found) {
  return pareto::count_covered(true_frontier, found) == 0;
}

std::size_t frontier_points_found(
    std::span<const pareto::Objective> true_frontier,
    std::span<const pareto::Objective> found) {
  return pareto::count_covered(true_frontier, found);
}

void OptimalityCounter::add(std::size_t degree,
                            std::span<const pareto::Objective> true_frontier,
                            std::span<const pareto::Objective> found) {
  Row& row = rows_[degree];
  ++row.nets;
  row.frontier_total += true_frontier.size();
  const std::size_t covered = pareto::count_covered(true_frontier, found);
  row.found += covered;
  if (covered == 0) ++row.non_optimal;
}

double OptimalityCounter::non_optimal_ratio(std::size_t degree) const {
  const auto it = rows_.find(degree);
  if (it == rows_.end() || it->second.nets == 0) return 0.0;
  return static_cast<double>(it->second.non_optimal) /
         static_cast<double>(it->second.nets);
}

void FrontierSizeStats::add(std::size_t degree, std::size_t frontier_size) {
  auto& m = max_[degree];
  m = std::max(m, frontier_size);
  auto& [sum, count] = sum_count_[degree];
  sum += static_cast<double>(frontier_size);
  ++count;
}

double FrontierSizeStats::mean(std::size_t degree) const {
  const auto it = sum_count_.find(degree);
  if (it == sum_count_.end() || it->second.second == 0) return 0.0;
  return it->second.first / static_cast<double>(it->second.second);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LineFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace patlabor::eval
