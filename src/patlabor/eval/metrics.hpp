// Experiment metrics for Tables III/IV and Figure 6.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "patlabor/geom/net.hpp"
#include "patlabor/pareto/pareto_set.hpp"

namespace patlabor::eval {

/// Reference point for per-net hypervolume, a pure function of the pin
/// geometry so it is stable across runs: the star-routing upper bounds
/// over the net's bounding box (w_ref = (n-1)(bw+bh), d_ref = 2(bw+bh),
/// the delay bound doubled for detouring trees).
pareto::Objective bbox_reference(const geom::Net& net);

/// Hypervolume of `frontier` against bbox_reference(net), normalized by
/// the reference rectangle area into [0, 1] so values are comparable and
/// summable across nets.  0 for empty frontiers or degenerate (zero-area)
/// reference boxes.
double net_hypervolume(std::span<const pareto::Objective> frontier,
                       const geom::Net& net);

/// Table III: a method is non-optimal on a net when it finds NO point of
/// the true Pareto frontier.
bool is_non_optimal(std::span<const pareto::Objective> true_frontier,
                    std::span<const pareto::Objective> found);

/// Table IV: how many frontier points the method found (weak-dominance
/// covering, which for points of the true frontier means exact match).
std::size_t frontier_points_found(
    std::span<const pareto::Objective> true_frontier,
    std::span<const pareto::Objective> found);

/// Accumulates per-degree counters for the Table III / IV reports.
struct OptimalityCounter {
  struct Row {
    std::size_t nets = 0;
    std::size_t non_optimal = 0;
    std::size_t frontier_total = 0;  ///< total frontier points (PatLabor row)
    std::size_t found = 0;           ///< frontier points found by the method
  };

  void add(std::size_t degree,
           std::span<const pareto::Objective> true_frontier,
           std::span<const pareto::Objective> found);

  double non_optimal_ratio(std::size_t degree) const;
  const std::map<std::size_t, Row>& rows() const { return rows_; }

 private:
  std::map<std::size_t, Row> rows_;
};

/// Figure 6: tracks the maximum frontier size per degree.
struct FrontierSizeStats {
  void add(std::size_t degree, std::size_t frontier_size);
  const std::map<std::size_t, std::size_t>& max_by_degree() const {
    return max_;
  }
  double mean(std::size_t degree) const;

 private:
  std::map<std::size_t, std::size_t> max_;
  std::map<std::size_t, std::pair<double, std::size_t>> sum_count_;
};

/// Least-squares line fit y = slope * x + intercept (Fig. 6's fitted line).
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace patlabor::eval
