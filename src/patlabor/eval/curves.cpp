#include "patlabor/eval/curves.hpp"

namespace patlabor::eval {

void CurveAccumulator::add(const std::string& method,
                           std::span<const pareto::Objective> frontier,
                           double w_norm, double d_norm) {
  curves_[method].push_back(pareto::normalize(frontier, w_norm, d_norm));
}

void CurveAccumulator::add_runtime(const std::string& method, double seconds) {
  runtimes_[method] += seconds;
}

std::vector<pareto::CurvePoint> CurveAccumulator::average(
    const std::string& method, std::span<const double> grid) const {
  const auto it = curves_.find(method);
  if (it == curves_.end()) return {};
  return pareto::average_curves(it->second, grid);
}

double CurveAccumulator::runtime(const std::string& method) const {
  const auto it = runtimes_.find(method);
  return it == runtimes_.end() ? 0.0 : it->second;
}

std::size_t CurveAccumulator::net_count(const std::string& method) const {
  const auto it = curves_.find(method);
  return it == curves_.end() ? 0 : it->second.size();
}

std::vector<std::string> CurveAccumulator::methods() const {
  std::vector<std::string> out;
  out.reserve(curves_.size());
  for (const auto& [name, c] : curves_) {
    (void)c;
    out.push_back(name);
  }
  return out;
}

}  // namespace patlabor::eval
