// Averaged, normalized Pareto-curve accumulation for Figure 7.
//
// Each net's frontier is normalized by w(FLUTE) and d(CL) (the paper's
// normalizers: the RSMT wirelength and the arborescence delay), then the
// curves are averaged on a fixed normalized-wirelength grid.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "patlabor/pareto/curve.hpp"

namespace patlabor::eval {

class CurveAccumulator {
 public:
  /// Adds one net's solution set for one method.
  void add(const std::string& method,
           std::span<const pareto::Objective> frontier, double w_norm,
           double d_norm);

  /// Records runtime (seconds) spent by a method; reported with the curve.
  void add_runtime(const std::string& method, double seconds);

  /// Averaged curve of a method on the given normalized-w grid.
  std::vector<pareto::CurvePoint> average(const std::string& method,
                                          std::span<const double> grid) const;

  double runtime(const std::string& method) const;
  std::size_t net_count(const std::string& method) const;
  std::vector<std::string> methods() const;

 private:
  std::map<std::string, std::vector<std::vector<pareto::CurvePoint>>> curves_;
  std::map<std::string, double> runtimes_;
};

}  // namespace patlabor::eval
