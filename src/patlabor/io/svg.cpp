#include "patlabor/io/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace patlabor::io {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                          "#9467bd", "#ff7f0e", "#8c564b"};

}  // namespace

std::string tree_svg(const tree::RoutingTree& t, int canvas) {
  using geom::Coord;
  Coord xlo = std::numeric_limits<Coord>::max(), xhi = 0;
  Coord ylo = std::numeric_limits<Coord>::max(), yhi = 0;
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    xlo = std::min(xlo, t.node(v).x);
    xhi = std::max(xhi, t.node(v).x);
    ylo = std::min(ylo, t.node(v).y);
    yhi = std::max(yhi, t.node(v).y);
  }
  const double margin = 20.0;
  const double span = static_cast<double>(
      std::max<Coord>(1, std::max(xhi - xlo, yhi - ylo)));
  const double scale = (canvas - 2 * margin) / span;
  auto sx = [&](Coord x) {
    return margin + static_cast<double>(x - xlo) * scale;
  };
  auto sy = [&](Coord y) {  // SVG y grows downward
    return canvas - margin - static_cast<double>(y - ylo) * scale;
  };

  std::string svg = "<svg xmlns='http://www.w3.org/2000/svg' width='" +
                    std::to_string(canvas) + "' height='" +
                    std::to_string(canvas) + "'>\n";
  // Edges as L-shapes (x first).
  for (std::size_t v = 1; v < t.num_nodes(); ++v) {
    const auto p = static_cast<std::size_t>(t.parent(v));
    const auto a = t.node(p);
    const auto b = t.node(v);
    svg += "<polyline fill='none' stroke='#444' stroke-width='1.5' points='" +
           fmt(sx(a.x)) + "," + fmt(sy(a.y)) + " " + fmt(sx(b.x)) + "," +
           fmt(sy(a.y)) + " " + fmt(sx(b.x)) + "," + fmt(sy(b.y)) + "'/>\n";
  }
  for (std::size_t v = 0; v < t.num_nodes(); ++v) {
    const auto p = t.node(v);
    if (t.is_pin(v)) {
      const char* fill = v == 0 ? "#d62728" : "#1f77b4";
      svg += "<rect x='" + fmt(sx(p.x) - 4) + "' y='" + fmt(sy(p.y) - 4) +
             "' width='8' height='8' fill='" + fill + "'/>\n";
    } else {
      svg += "<circle cx='" + fmt(sx(p.x)) + "' cy='" + fmt(sy(p.y)) +
             "' r='3' fill='none' stroke='#444'/>\n";
    }
  }
  svg += "</svg>\n";
  return svg;
}

std::string curves_svg(std::span<const LabeledCurve> curves, int canvas) {
  double xlo = 1e300, xhi = -1e300, ylo = 1e300, yhi = -1e300;
  for (const auto& c : curves)
    for (const auto& p : c.points) {
      xlo = std::min(xlo, p.w);
      xhi = std::max(xhi, p.w);
      ylo = std::min(ylo, p.d);
      yhi = std::max(yhi, p.d);
    }
  if (xlo > xhi) {
    xlo = ylo = 0;
    xhi = yhi = 1;
  }
  const double margin = 40.0;
  const double sxs = (canvas - 2 * margin) / std::max(1e-12, xhi - xlo);
  const double sys = (canvas - 2 * margin) / std::max(1e-12, yhi - ylo);
  auto sx = [&](double x) { return margin + (x - xlo) * sxs; };
  auto sy = [&](double y) { return canvas - margin - (y - ylo) * sys; };

  std::string svg = "<svg xmlns='http://www.w3.org/2000/svg' width='" +
                    std::to_string(canvas) + "' height='" +
                    std::to_string(canvas) + "'>\n";
  svg += "<rect x='" + fmt(margin) + "' y='" + fmt(margin) + "' width='" +
         fmt(canvas - 2 * margin) + "' height='" + fmt(canvas - 2 * margin) +
         "' fill='none' stroke='#999'/>\n";
  int color = 0;
  for (const auto& c : curves) {
    const char* stroke = kPalette[color % 6];
    std::string pts;
    for (const auto& p : c.points)
      pts += fmt(sx(p.w)) + "," + fmt(sy(p.d)) + " ";
    svg += "<polyline fill='none' stroke='" + std::string(stroke) +
           "' stroke-width='1.5' points='" + pts + "'/>\n";
    for (const auto& p : c.points)
      svg += "<circle cx='" + fmt(sx(p.w)) + "' cy='" + fmt(sy(p.d)) +
             "' r='3' fill='" + stroke + "'/>\n";
    svg += "<text x='" + fmt(margin + 6) + "' y='" +
           fmt(margin + 16 + 16 * color) + "' fill='" + stroke +
           "' font-size='12'>" + c.label + "</text>\n";
    ++color;
  }
  svg += "</svg>\n";
  return svg;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << content;
}

}  // namespace patlabor::io
