#include "patlabor/io/netfile.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace patlabor::io {

void write_nets(const std::string& path, const std::vector<geom::Net>& nets) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  for (const geom::Net& net : nets) {
    out << "net " << (net.name.empty() ? "-" : net.name) << ' '
        << net.degree() << '\n';
    for (const geom::Point& p : net.pins) out << p.x << ' ' << p.y << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<geom::Net> read_nets(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<geom::Net> nets;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream head(line);
    std::string tag;
    head >> tag;
    if (tag != "net")
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": expected 'net'");
    geom::Net net;
    std::size_t degree = 0;
    head >> net.name >> degree;
    if (!head || degree == 0)
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed net header");
    if (net.name == "-") net.name.clear();
    for (std::size_t i = 0; i < degree; ++i) {
      if (!std::getline(in, line))
        throw std::runtime_error(path + ": truncated net '" + net.name + "'");
      ++line_no;
      std::istringstream coords(line);
      geom::Point p;
      coords >> p.x >> p.y;
      if (!coords)
        throw std::runtime_error(path + ":" + std::to_string(line_no) +
                                 ": malformed coordinate");
      net.pins.push_back(p);
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

}  // namespace patlabor::io
