#include "patlabor/io/netfile.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "patlabor/util/str.hpp"

namespace patlabor::io {

void write_nets(const std::string& path, const std::vector<geom::Net>& nets) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  for (const geom::Net& net : nets) {
    out << "net " << (net.name.empty() ? "-" : net.name) << ' '
        << net.degree() << '\n';
    for (const geom::Point& p : net.pins) out << p.x << ' ' << p.y << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

namespace {

/// Whitespace tokens of `line` with any '#' comment stripped first.
std::vector<std::string> tokens_of(const std::string& line) {
  std::string code = line.substr(0, line.find('#'));
  std::istringstream in(code);
  std::vector<std::string> toks;
  std::string t;
  while (in >> t) toks.push_back(t);
  return toks;
}

}  // namespace

std::vector<geom::Net> read_nets(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<geom::Net> nets;
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& reason) {
    throw NetFileError(path, line_no, reason);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> head = tokens_of(line);
    if (head.empty()) continue;
    if (head[0] != "net") fail("expected 'net <name> <degree>'");
    if (head.size() != 3)
      fail("malformed net header (expected 'net <name> <degree>', got " +
           std::to_string(head.size()) + " tokens)");
    const auto degree = util::parse_u64(head[2]);
    if (!degree) fail("invalid degree '" + head[2] + "'");
    if (*degree < 2)
      fail("degree must be at least 2 (one source, one sink), got " +
           head[2]);

    geom::Net net;
    net.name = head[1] == "-" ? "" : head[1];
    net.pins.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(*degree, 1u << 20)));
    // First-occurrence line of each pin, to report duplicates precisely.
    std::map<geom::Point, std::size_t> seen;
    for (std::uint64_t i = 0; i < *degree; ++i) {
      if (!std::getline(in, line)) {
        ++line_no;
        fail("truncated net '" + net.name + "' (" + std::to_string(i) +
             " of " + std::to_string(*degree) + " pins)");
      }
      ++line_no;
      const std::vector<std::string> coords = tokens_of(line);
      if (coords.empty()) {
        --i;  // blank / comment-only lines are allowed between pins
        continue;
      }
      if (coords.size() != 2)
        fail("expected '<x> <y>', got " + std::to_string(coords.size()) +
             " tokens");
      const auto x = util::parse_i64(coords[0]);
      const auto y = util::parse_i64(coords[1]);
      if (!x) fail("non-numeric coordinate '" + coords[0] + "'");
      if (!y) fail("non-numeric coordinate '" + coords[1] + "'");
      const geom::Point p{*x, *y};
      const auto [it, inserted] = seen.emplace(p, line_no);
      if (!inserted)
        fail("duplicate pin (" + coords[0] + ", " + coords[1] +
             "), first seen on line " + std::to_string(it->second));
      net.pins.push_back(p);
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

}  // namespace patlabor::io
