// Paper-style ASCII tables printed by the experiment harnesses.
#pragma once

#include <string>
#include <vector>

namespace patlabor::io {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_separator();

  /// Renders with column alignment (first column left, rest right).
  std::string to_string() const;

  /// Prints to stdout with an optional caption line.
  void print(const std::string& caption = {}) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace patlabor::io
