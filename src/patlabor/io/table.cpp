#include "patlabor/io/table.hpp"

#include <algorithm>
#include <cstdio>

namespace patlabor::io {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      line += ' ';
      if (c == 0) {  // left align the first column
        line += cell + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + cell;
      }
      line += " |";
    }
    return line + "\n";
  };
  auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : width) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = rule() + format_row(header_) + rule();
  for (const Row& r : rows_) out += r.separator ? rule() : format_row(r.cells);
  out += rule();
  return out;
}

void AsciiTable::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
}

}  // namespace patlabor::io
