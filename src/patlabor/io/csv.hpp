// Minimal CSV writer for experiment artifacts.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace patlabor::io {

class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; fields containing commas or quotes are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: stringify doubles with 6 significant digits.
  static std::string num(double v);
  static std::string num(long long v);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace patlabor::io
