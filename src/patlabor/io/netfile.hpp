// A simple text format for nets, so experiments and examples can exchange
// instances:
//
//   net <name> <degree>
//   <x> <y>          # source first, then sinks
//   ...
#pragma once

#include <string>
#include <vector>

#include "patlabor/geom/net.hpp"

namespace patlabor::io {

/// Writes nets to a file; throws on I/O errors.
void write_nets(const std::string& path, const std::vector<geom::Net>& nets);

/// Reads nets; throws on malformed input (bad counts, missing coordinates).
std::vector<geom::Net> read_nets(const std::string& path);

}  // namespace patlabor::io
