// A simple text format for nets, so experiments and examples can exchange
// instances:
//
//   net <name> <degree>
//   <x> <y>          # source first, then sinks
//   ...
//
// Blank lines are skipped and '#' starts a comment (to end of line, also
// after tokens).  The reader is strict: a malformed header, non-numeric or
// extra tokens, a degree below 2, a truncated net, or duplicate pins raise
// NetFileError carrying the offending line number — never UB or a silent
// zero from atoll-style parsing.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "patlabor/geom/net.hpp"

namespace patlabor::io {

/// Malformed net file.  what() reads "<path>:<line>: <reason>".
class NetFileError : public std::runtime_error {
 public:
  NetFileError(const std::string& path, std::size_t line,
               const std::string& reason)
      : std::runtime_error(path + ":" + std::to_string(line) + ": " + reason),
        line_(line) {}

  /// 1-based line number of the offending input line.
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Writes nets to a file; throws on I/O errors.
void write_nets(const std::string& path, const std::vector<geom::Net>& nets);

/// Reads nets; throws NetFileError on malformed input and
/// std::runtime_error when the file cannot be opened.
std::vector<geom::Net> read_nets(const std::string& path);

}  // namespace patlabor::io
