#include "patlabor/io/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace patlabor::io {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string CsvWriter::num(long long v) { return std::to_string(v); }

}  // namespace patlabor::io
