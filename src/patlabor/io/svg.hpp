// SVG rendering of routing trees and Pareto curves (for the examples and
// for eyeballing results; Figures 1/2-style pictures).
#pragma once

#include <span>
#include <string>

#include "patlabor/pareto/curve.hpp"
#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::io {

/// Renders a tree: pins as squares (source filled), Steiner points as
/// circles, edges as L-shapes.  Returns the SVG document.
std::string tree_svg(const tree::RoutingTree& t, int canvas = 480);

/// Renders one or more labeled Pareto curves as a scatter/staircase plot.
struct LabeledCurve {
  std::string label;
  std::vector<pareto::CurvePoint> points;
};
std::string curves_svg(std::span<const LabeledCurve> curves, int canvas = 480);

/// Writes a document to a file.
void write_file(const std::string& path, const std::string& content);

}  // namespace patlabor::io
