// Rectilinear Steiner minimum arborescence (RSMA) heuristic.
//
// Plays the role of Cordova-Lee [11] in the paper: an RSMA connects every
// sink to the source by a shortest (monotone) rectilinear path, so its delay
// equals the trivial lower bound max_i ||r - p_i||_1; the heuristic then
// minimizes wirelength subject to that.  Fig. 7 normalizes delay by d(CL).
//
// Implementation: the classic merge heuristic for the rectilinear Steiner
// arborescence (process per quadrant; repeatedly merge the pair of active
// roots whose meet point is farthest from the source), which carries the
// same 2-approximation guarantee family as Cordova-Lee.
#pragma once

#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::rsma {

/// Builds a shortest-path (arborescence) routing tree for the net.
/// Post-condition: every sink's tree path length equals its L1 distance
/// from the source, hence delay(T) == star_delay(net).
tree::RoutingTree rsma(const geom::Net& net);

/// The delay lower bound max_i ||r - p_i||_1 (== d of any arborescence).
geom::Length star_delay(const geom::Net& net);

}  // namespace patlabor::rsma
