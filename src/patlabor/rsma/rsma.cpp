#include "patlabor/rsma/rsma.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace patlabor::rsma {

using geom::Length;
using geom::Net;
using geom::Point;
using tree::RoutingTree;

namespace {

// Merge heuristic on one quadrant, in coordinates where the source is the
// origin and all points are componentwise >= 0.  Emits monotone edges.
void solve_quadrant(const Point& source, std::vector<Point> pts,
                    std::vector<std::pair<Point, Point>>& edges) {
  if (pts.empty()) return;
  // Active roots of partial arborescences.
  std::vector<Point> active = std::move(pts);
  while (active.size() > 1) {
    // Pick the pair whose meet point is farthest from the source
    // (maximizes shared trunk, the RSA merge rule).
    std::size_t bi = 0, bj = 1;
    Length best = -1;
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const Length key = std::min(active[i].x, active[j].x) +
                           std::min(active[i].y, active[j].y);
        if (key > best) {
          best = key;
          bi = i;
          bj = j;
        }
      }
    }
    const Point m{std::min(active[bi].x, active[bj].x),
                  std::min(active[bi].y, active[bj].y)};
    if (m != active[bi]) edges.emplace_back(m, active[bi]);
    if (m != active[bj]) edges.emplace_back(m, active[bj]);
    // Remove bj first (larger index), then bi, then insert the meet.
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bi));
    active.push_back(m);
  }
  if (active.front() != Point{0, 0})
    edges.emplace_back(Point{0, 0}, active.front());
  // Shift back to absolute coordinates happens in the caller via lambda;
  // here the caller passes already-shifted points, so nothing to do.
  (void)source;
}

}  // namespace

RoutingTree rsma(const Net& net) {
  const Point r = net.source();
  // Quadrant buckets in source-relative "first quadrant" coordinates,
  // remembering the sign flips to map back.
  struct Quadrant {
    geom::Coord sx, sy;  // sign of x / y
    std::vector<Point> pts;
  };
  std::vector<Quadrant> quads = {
      {+1, +1, {}}, {-1, +1, {}}, {+1, -1, {}}, {-1, -1, {}}};
  for (const Point& p : net.sinks()) {
    const geom::Coord dx = p.x - r.x;
    const geom::Coord dy = p.y - r.y;
    // Axis points go to the quadrant with positive sign (deterministic).
    const std::size_t qi =
        (dx >= 0 ? 0u : 1u) + (dy >= 0 ? 0u : 2u);
    quads[qi].pts.push_back(
        Point{dx >= 0 ? dx : -dx, dy >= 0 ? dy : -dy});
  }

  std::vector<std::pair<Point, Point>> edges;
  for (const Quadrant& q : quads) {
    if (q.pts.empty()) continue;
    std::vector<std::pair<Point, Point>> local;
    solve_quadrant(r, q.pts, local);
    for (auto& [a, b] : local) {
      const Point pa{r.x + q.sx * a.x, r.y + q.sy * a.y};
      const Point pb{r.x + q.sx * b.x, r.y + q.sy * b.y};
      edges.emplace_back(pa, pb);
    }
  }

  RoutingTree t = RoutingTree::from_edges(net, edges);
  t.normalize();
  return t;
}

Length star_delay(const Net& net) {
  Length d = 0;
  for (const Point& p : net.sinks())
    d = std::max(d, geom::l1(net.source(), p));
  return d;
}

}  // namespace patlabor::rsma
