// Staircase view of a Pareto curve, used for plotting and for averaging
// curves across nets (Fig. 7 in the paper normalizes each net's frontier by
// w(FLUTE) and d(CL) and averages).
#pragma once

#include <span>
#include <vector>

#include "patlabor/pareto/pareto_set.hpp"

namespace patlabor::pareto {

/// A point of a (possibly normalized) curve in the (w, d) plane.
struct CurvePoint {
  double w = 0.0;
  double d = 0.0;
};

/// A normalized Pareto curve: w' = w / w_norm, d' = d / d_norm, sorted by w.
std::vector<CurvePoint> normalize(std::span<const Objective> frontier,
                                  double w_norm, double d_norm);

/// Evaluates the staircase at abscissa w: the minimum d among points with
/// w' <= w.  Returns +infinity when no point qualifies (w left of the curve).
double staircase_eval(std::span<const CurvePoint> curve_sorted_by_w, double w);

/// Averages many normalized curves on a common w grid.  Grid points where a
/// curve is undefined (left of its cheapest solution) take that curve's
/// leftmost d value, so every curve contributes to every grid point; this
/// matches the "averaged Pareto curve" presentation of Fig. 7.
std::vector<CurvePoint> average_curves(
    std::span<const std::vector<CurvePoint>> curves,
    std::span<const double> w_grid);

/// Builds an evenly spaced grid of n points covering [lo, hi].
std::vector<double> linspace(double lo, double hi, int n);

}  // namespace patlabor::pareto
