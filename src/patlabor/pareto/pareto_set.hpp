// Pareto-set algebra used throughout the paper's algorithms:
//
//   Pareto(S)  - drop dominated points            (O(|S| log |S|), staircase)
//   S + x      - grow: both objectives shift by an edge length
//   S ⊕ S'     - merge: wirelengths add, delays take the max
//
// These are exactly the three operations of Eq. (1) in the paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "patlabor/pareto/objective.hpp"

namespace patlabor::pareto {

using ObjVec = std::vector<Objective>;

/// Returns the Pareto frontier of the input: duplicates removed, dominated
/// points removed, sorted by w ascending (hence d strictly descending).
ObjVec pareto_filter(ObjVec points);

/// Indices (into the input) of a maximal nondominated subset, keeping the
/// first occurrence of each distinct objective value.  Returned indices are
/// ordered by objective (w ascending).  Use this to filter payload-carrying
/// collections (e.g. trees) by their objectives.
std::vector<std::size_t> pareto_indices(std::span<const Objective> points);

/// True when the (arbitrary-order) set contains no dominated or duplicate
/// point — i.e. it is a Pareto curve in the paper's sense.
bool is_pareto_curve(std::span<const Objective> points);

/// S + x from the paper: both coordinates shifted by x (an edge length).
ObjVec shifted(std::span<const Objective> s, Length x);

/// S ⊕ S' from the paper: {(w1+w2, max(d1,d2))}, Pareto-filtered.
ObjVec pareto_sum(std::span<const Objective> a, std::span<const Objective> b);

/// True when some point of the frontier weakly dominates s (i.e. the set
/// "covers" s: it found a solution at least as good).
bool covers(std::span<const Objective> frontier, const Objective& s);

/// Number of points of `target` that are covered by `found` (used for the
/// Table III / IV optimality accounting: a method "finds" a frontier point
/// if it produces a solution weakly dominating it; for target == true
/// frontier this reduces to exact matches).
std::size_t count_covered(std::span<const Objective> target,
                          std::span<const Objective> found);

/// Hypervolume (area dominated within the rectangle bounded by ref);
/// points outside ref contribute their clipped area.  Larger is better.
double hypervolume(std::span<const Objective> frontier, const Objective& ref);

/// Merges any number of solution sets and Pareto-filters the union.
ObjVec pareto_union(std::span<const ObjVec> sets);

}  // namespace patlabor::pareto
