// The bicriterion objective (wirelength, delay) and Pareto dominance.
#pragma once

#include <cstdint>

#include "patlabor/geom/point.hpp"

namespace patlabor::pareto {

using geom::Length;

/// Objective vector s(T) = (w(T), d(T)) of a routing tree (both minimized).
struct Objective {
  Length w = 0;  ///< total wirelength
  Length d = 0;  ///< maximum source-to-sink path length

  friend constexpr bool operator==(const Objective&, const Objective&) =
      default;

  /// Sort key: w ascending, then d ascending.
  friend constexpr bool operator<(const Objective& a, const Objective& b) {
    return a.w != b.w ? a.w < b.w : a.d < b.d;
  }
};

/// Pareto dominance (weak): a <= b in both coordinates.  Following the
/// paper's definition, a dominates b when a != b and a is no worse in both.
constexpr bool dominates(const Objective& a, const Objective& b) {
  return a.w <= b.w && a.d <= b.d && a != b;
}

/// Weak dominance: a no worse than b in both coordinates (allows equality).
constexpr bool weakly_dominates(const Objective& a, const Objective& b) {
  return a.w <= b.w && a.d <= b.d;
}

}  // namespace patlabor::pareto
