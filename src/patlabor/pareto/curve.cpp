#include "patlabor/pareto/curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace patlabor::pareto {

std::vector<CurvePoint> normalize(std::span<const Objective> frontier,
                                  double w_norm, double d_norm) {
  ObjVec f(frontier.begin(), frontier.end());
  f = pareto_filter(std::move(f));
  std::vector<CurvePoint> out;
  out.reserve(f.size());
  for (const Objective& p : f)
    out.push_back(CurvePoint{static_cast<double>(p.w) / w_norm,
                             static_cast<double>(p.d) / d_norm});
  return out;
}

double staircase_eval(std::span<const CurvePoint> curve, double w) {
  double best = std::numeric_limits<double>::infinity();
  for (const CurvePoint& p : curve) {
    if (p.w <= w + 1e-12) best = std::min(best, p.d);
  }
  return best;
}

std::vector<CurvePoint> average_curves(
    std::span<const std::vector<CurvePoint>> curves,
    std::span<const double> w_grid) {
  std::vector<CurvePoint> out;
  out.reserve(w_grid.size());
  for (double w : w_grid) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& c : curves) {
      if (c.empty()) continue;
      double d = staircase_eval(c, w);
      if (std::isinf(d)) d = c.front().d;  // extend flat to the left
      sum += d;
      ++n;
    }
    if (n > 0) out.push_back(CurvePoint{w, sum / static_cast<double>(n)});
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> g;
  if (n <= 0) return g;
  if (n == 1) {
    g.push_back(lo);
    return g;
  }
  g.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    g.push_back(lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(n - 1));
  return g;
}

}  // namespace patlabor::pareto
