// SolutionSet: the first-class carrier of a Pareto frontier.
//
// Invariant (the "staircase"): objectives are sorted by w strictly
// ascending and d strictly descending — i.e. a nondominated antichain with
// no duplicates, exactly the shape Eq. (1)'s Pareto(·) produces.  Every
// result type of the repository (Pareto-DW, lookup-table queries, PatLabor,
// Pareto-KS, the engine cache) carries its frontier as a SolutionSet, so
// the invariant is established once at the producer and every consumer can
// rely on front() being the min-wirelength point and back() the min-delay
// point without re-filtering.
//
// A set optionally carries *payload indices*: when built with select(),
// payload()[k] is the index of the k-th surviving objective in the
// original candidate array, so parallel arrays (trees, labels) can be
// gathered through take_payload() without re-sorting them.
//
// The three frontier operations of Eq. (1) exist as in-place kernels —
// filter (Pareto(·)), shift (S + x), merge (S ⊕ S') — reusing
// caller-provided FilterScratch buffers, so DP inner loops run without
// per-call heap allocations.  The pure functions in pareto_set.hpp remain
// as reference implementations (and are cross-checked against these
// kernels by randomized property tests).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <ostream>
#include <span>
#include <utility>
#include <vector>

#include "patlabor/pareto/pareto_set.hpp"

namespace patlabor::pareto {

/// Reusable buffers for the in-place kernels.  One instance per solver /
/// thread; contents are meaningless between calls but capacity persists,
/// so steady-state filtering performs no heap allocations.
struct FilterScratch {
  std::vector<std::uint32_t> order;  ///< candidate indices, sorted
  std::vector<std::uint32_t> kept;   ///< surviving indices, objective order
  ObjVec tmp_objs;                   ///< gather buffer for filter()
  std::vector<std::uint32_t> tmp_payload;
};

/// Allocation-free index form of Pareto(·): fills `scratch.kept` with the
/// indices (into 0..n-1) of a maximal nondominated subset, ordered by
/// objective, keeping the lowest index among duplicates.  `obj_at(i)` must
/// return the i-th candidate objective.  Identical tie-breaking to
/// pareto_indices(), so solvers migrated onto this kernel keep bit-exact
/// survivor sets.
template <typename ObjAt>
std::span<const std::uint32_t> filter_indices(std::size_t n, ObjAt&& obj_at,
                                              FilterScratch& scratch) {
  scratch.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) scratch.order[i] = i;
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Objective& oa = obj_at(a);
              const Objective& ob = obj_at(b);
              if (oa == ob) return a < b;  // stable for duplicates
              return oa < ob;
            });
  scratch.kept.clear();
  Length best_d = std::numeric_limits<Length>::max();
  for (std::uint32_t i : scratch.order) {
    if (obj_at(i).d < best_d) {
      scratch.kept.push_back(i);
      best_d = obj_at(i).d;
    }
  }
  return scratch.kept;
}

class SolutionSet {
 public:
  SolutionSet() = default;

  /// Pareto-filters arbitrary points into a set (no payload).
  static SolutionSet of(ObjVec points) {
    SolutionSet s;
    s.objs_ = pareto_filter(std::move(points));
    return s;
  }

  /// Pareto-filters candidates, recording each survivor's index into the
  /// input as payload (for gathering parallel arrays; see take_payload).
  /// The scratch form reuses caller-owned buffers (e.g. a worker thread's
  /// FilterScratch) so selection allocates only the result.
  static SolutionSet select(std::span<const Objective> candidates,
                            FilterScratch& scratch) {
    SolutionSet s;
    const auto kept = filter_indices(
        candidates.size(), [&](std::uint32_t i) -> const Objective& {
          return candidates[i];
        },
        scratch);
    s.objs_.reserve(kept.size());
    s.payload_.reserve(kept.size());
    for (std::uint32_t i : kept) {
      s.objs_.push_back(candidates[i]);
      s.payload_.push_back(i);
    }
    return s;
  }

  static SolutionSet select(std::span<const Objective> candidates) {
    FilterScratch scratch;
    return select(candidates, scratch);
  }

  /// Adopts points already in staircase order (debug-asserted).  Producers
  /// whose construction guarantees the invariant — e.g. a DP whose final
  /// state is filtered in objective order — use this to skip a re-sort.
  static SolutionSet adopt_staircase(ObjVec points) {
    SolutionSet s;
    s.objs_ = std::move(points);
    assert(s.invariant_ok());
    return s;
  }

  // ---- container view (read) ----
  std::size_t size() const { return objs_.size(); }
  bool empty() const { return objs_.empty(); }
  const Objective& operator[](std::size_t i) const { return objs_[i]; }
  const Objective& front() const { return objs_.front(); }
  const Objective& back() const { return objs_.back(); }
  ObjVec::const_iterator begin() const { return objs_.begin(); }
  ObjVec::const_iterator end() const { return objs_.end(); }
  std::span<const Objective> objectives() const { return objs_; }
  /// Seamless interop with every span-taking consumer (covers, hypervolume,
  /// normalize, eval::*, ...).
  operator std::span<const Objective>() const { return objs_; }  // NOLINT

  std::span<const std::uint32_t> payload() const { return payload_; }
  bool has_payload() const { return !payload_.empty(); }
  void strip_payload() { payload_.clear(); }

  // ---- mutation ----
  void clear() {
    objs_.clear();
    payload_.clear();
  }
  void reserve(std::size_t n) { objs_.reserve(n); }

  /// Appends without filtering; the caller re-establishes the invariant via
  /// filter() (or appends in staircase order).
  void append_raw(const Objective& obj) { objs_.push_back(obj); }
  void append_raw(const Objective& obj, std::uint32_t tag) {
    objs_.push_back(obj);
    payload_.push_back(tag);
  }

  /// In-place S + x of Eq. (1): both coordinates shift by an edge length.
  /// The staircase is translation-invariant, so no re-filter is needed.
  void shift(Length x) {
    for (Objective& o : objs_) {
      o.w += x;
      o.d += x;
    }
  }

  /// In-place Pareto(·) of Eq. (1): drops dominated/duplicate points and
  /// sorts survivors into staircase order, carrying payload along.  No
  /// allocations once the scratch capacity has warmed up.
  void filter(FilterScratch& scratch) {
    const auto kept = filter_indices(
        objs_.size(),
        [&](std::uint32_t i) -> const Objective& { return objs_[i]; },
        scratch);
    scratch.tmp_objs.clear();
    for (std::uint32_t i : kept) scratch.tmp_objs.push_back(objs_[i]);
    objs_.swap(scratch.tmp_objs);
    if (!payload_.empty()) {
      scratch.tmp_payload.clear();
      for (std::uint32_t i : kept) scratch.tmp_payload.push_back(payload_[i]);
      payload_.swap(scratch.tmp_payload);
    }
  }

  /// Convenience filter with a throwaway scratch (cold paths).
  void filter() {
    FilterScratch scratch;
    filter(scratch);
  }

  /// S ⊕ S' of Eq. (1) into `out` (which must not alias a or b):
  /// wirelengths add, delays take the max, then Pareto-filter.  Payload is
  /// not propagated (a merged point has two parents).
  static void merge(const SolutionSet& a, const SolutionSet& b,
                    SolutionSet& out, FilterScratch& scratch) {
    assert(&out != &a && &out != &b);
    out.clear();
    out.reserve(a.size() * b.size());
    for (const Objective& pa : a.objs_)
      for (const Objective& pb : b.objs_)
        out.objs_.push_back(Objective{pa.w + pb.w, std::max(pa.d, pb.d)});
    out.filter(scratch);
  }

  /// Checks the staircase invariant (w strictly ascending, d strictly
  /// descending) and payload alignment.  O(n); used by asserts and tests.
  bool invariant_ok() const {
    if (!payload_.empty() && payload_.size() != objs_.size()) return false;
    for (std::size_t i = 1; i < objs_.size(); ++i)
      if (objs_[i].w <= objs_[i - 1].w || objs_[i].d >= objs_[i - 1].d)
        return false;
    return true;
  }

  /// Surrenders the objective storage (e.g. to feed a pure function that
  /// takes ObjVec by value).
  ObjVec release() {
    payload_.clear();
    return std::move(objs_);
  }

  friend bool operator==(const SolutionSet& a, const SolutionSet& b) {
    return a.objs_ == b.objs_;
  }
  /// Heterogeneous compare against a raw frontier (C++20 synthesizes the
  /// reversed form) — lets existing golden tests keep their ObjVec side.
  friend bool operator==(const SolutionSet& a, const ObjVec& b) {
    return a.objs_ == b;
  }

  friend std::ostream& operator<<(std::ostream& os, const SolutionSet& s) {
    os << "SolutionSet{";
    for (std::size_t i = 0; i < s.objs_.size(); ++i)
      os << (i == 0 ? "" : ", ") << "(" << s.objs_[i].w << ","
         << s.objs_[i].d << ")";
    return os << "}";
  }

 private:
  ObjVec objs_;
  std::vector<std::uint32_t> payload_;
};

/// Gathers the payload-selected entries out of `items` (moving them),
/// returning the compacted vector parallel to `set`, and strips the
/// payload — after this the set and the returned vector line up index for
/// index.  A set without payload means "items are already parallel": they
/// are returned unchanged.
template <typename T>
std::vector<T> take_payload(SolutionSet& set, std::vector<T>&& items) {
  if (!set.has_payload()) return std::move(items);
  std::vector<T> out;
  out.reserve(set.size());
  for (std::uint32_t i : set.payload()) out.push_back(std::move(items[i]));
  set.strip_payload();
  return out;
}

}  // namespace patlabor::pareto
