#include "patlabor/pareto/pareto_set.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace patlabor::pareto {

ObjVec pareto_filter(ObjVec points) {
  // Sort by w ascending, d ascending; then a left-to-right staircase sweep
  // keeps a point iff its d strictly improves the best seen so far.
  std::sort(points.begin(), points.end());
  ObjVec out;
  out.reserve(points.size());
  Length best_d = std::numeric_limits<Length>::max();
  for (const Objective& p : points) {
    if (p.d < best_d) {
      out.push_back(p);
      best_d = p.d;
    }
  }
  return out;
}

std::vector<std::size_t> pareto_indices(std::span<const Objective> points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a] == points[b]) return a < b;  // stable for duplicates
    return points[a] < points[b];
  });
  std::vector<std::size_t> kept;
  kept.reserve(points.size());
  Length best_d = std::numeric_limits<Length>::max();
  for (std::size_t i : order) {
    if (points[i].d < best_d) {
      kept.push_back(i);
      best_d = points[i].d;
    }
  }
  return kept;
}

bool is_pareto_curve(std::span<const Objective> points) {
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = 0; j < points.size(); ++j)
      if (i != j &&
          (points[i] == points[j] || dominates(points[i], points[j])))
        return false;
  return true;
}

ObjVec shifted(std::span<const Objective> s, Length x) {
  ObjVec out;
  out.reserve(s.size());
  for (const Objective& p : s) out.push_back(Objective{p.w + x, p.d + x});
  return out;
}

ObjVec pareto_sum(std::span<const Objective> a, std::span<const Objective> b) {
  ObjVec combos;
  combos.reserve(a.size() * b.size());
  for (const Objective& pa : a)
    for (const Objective& pb : b)
      combos.push_back(Objective{pa.w + pb.w, std::max(pa.d, pb.d)});
  return pareto_filter(std::move(combos));
}

bool covers(std::span<const Objective> frontier, const Objective& s) {
  return std::any_of(frontier.begin(), frontier.end(), [&](const Objective& f) {
    return weakly_dominates(f, s);
  });
}

std::size_t count_covered(std::span<const Objective> target,
                          std::span<const Objective> found) {
  std::size_t n = 0;
  for (const Objective& t : target)
    if (covers(found, t)) ++n;
  return n;
}

double hypervolume(std::span<const Objective> frontier, const Objective& ref) {
  ObjVec f(frontier.begin(), frontier.end());
  f = pareto_filter(std::move(f));  // sorted by w asc, d desc
  double area = 0.0;
  Length prev_d = ref.d;
  for (const Objective& p : f) {
    if (p.w >= ref.w) break;
    const Length d = std::max<Length>(p.d, 0);
    if (d >= prev_d) continue;  // clipped out
    area += static_cast<double>(ref.w - p.w) * static_cast<double>(prev_d - d);
    prev_d = d;
  }
  return area;
}

ObjVec pareto_union(std::span<const ObjVec> sets) {
  ObjVec all;
  for (const ObjVec& s : sets) all.insert(all.end(), s.begin(), s.end());
  return pareto_filter(std::move(all));
}

}  // namespace patlabor::pareto
