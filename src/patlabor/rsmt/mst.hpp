// Rectilinear minimum spanning trees over pins (no Steiner points).
//
// The MST is the seed for the RSMT heuristic, SALT's shallow-light core,
// and the Prim-Dijkstra baseline at alpha = 0.
#pragma once

#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::rsmt {

/// Prim's algorithm under the L1 metric, O(n^2); the tree is rooted at the
/// net source (pin 0).
tree::RoutingTree rectilinear_mst(const geom::Net& net);

/// Sum of MST edge lengths (convenience for lower-bound style checks).
geom::Length mst_length(const geom::Net& net);

}  // namespace patlabor::rsmt
