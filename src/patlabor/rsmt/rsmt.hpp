// Rectilinear Steiner minimum tree construction — the FLUTE substitute.
//
// The paper uses FLUTE [4] for (a) the initial tree T0 of the local search
// and (b) the wirelength normalizer w(FLUTE) in Fig. 7.  We fill that role
// with an exact Hanan-grid Dreyfus-Wagner for small nets (<= kExactMaxDegree
// pins, where it is provably optimal — at least as good as FLUTE) and an
// MST + Steinerization/edge-substitution heuristic above that.
#pragma once

#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::rsmt {

/// Largest degree routed exactly (3^n DP is comfortable through 10 pins).
inline constexpr std::size_t kExactMaxDegree = 10;

/// Exact RSMT by scalar Dreyfus-Wagner on the Hanan grid.
/// Requires net.degree() <= kExactMaxDegree.
tree::RoutingTree exact_rsmt(const geom::Net& net);

/// Heuristic RSMT: rectilinear MST followed by Steinerization and
/// wirelength-biased edge substitution.  Any degree.
tree::RoutingTree rsmt_heuristic(const geom::Net& net);

/// Dispatcher: exact for small nets, heuristic otherwise.  This is the
/// library's "FLUTE" entry point.
tree::RoutingTree rsmt(const geom::Net& net);

}  // namespace patlabor::rsmt
