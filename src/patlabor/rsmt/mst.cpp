#include "patlabor/rsmt/mst.hpp"

#include <limits>
#include <vector>

namespace patlabor::rsmt {

using geom::Length;
using geom::Net;
using tree::RoutingTree;

RoutingTree rectilinear_mst(const Net& net) {
  const std::size_t n = net.pins.size();
  RoutingTree t = RoutingTree::star(net);
  if (n <= 2) return t;

  // Prim from the source; parent pointers fall out rooted correctly.
  std::vector<bool> in_tree(n, false);
  std::vector<Length> key(n, std::numeric_limits<Length>::max());
  std::vector<std::int32_t> best_parent(n, 0);
  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v)
    key[v] = geom::l1(net.pins[v], net.pins[0]);

  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    Length best = std::numeric_limits<Length>::max();
    for (std::size_t v = 1; v < n; ++v) {
      if (!in_tree[v] && key[v] < best) {
        best = key[v];
        pick = v;
      }
    }
    in_tree[pick] = true;
    t.set_parent(pick, best_parent[pick]);
    for (std::size_t v = 1; v < n; ++v) {
      if (in_tree[v]) continue;
      const Length d = geom::l1(net.pins[v], net.pins[pick]);
      if (d < key[v]) {
        key[v] = d;
        best_parent[v] = static_cast<std::int32_t>(pick);
      }
    }
  }
  return t;
}

Length mst_length(const Net& net) { return rectilinear_mst(net).wirelength(); }

}  // namespace patlabor::rsmt
