#include "patlabor/rsmt/rsmt.hpp"

#include <bit>
#include <cassert>
#include <limits>
#include <utility>
#include <vector>

#include "patlabor/geom/hanan.hpp"
#include "patlabor/rsmt/mst.hpp"
#include "patlabor/tree/refine.hpp"

namespace patlabor::rsmt {

using geom::HananGrid;
using geom::Length;
using geom::Net;
using geom::NodeId;
using geom::Point;
using tree::RoutingTree;

namespace {

constexpr Length kInf = std::numeric_limits<Length>::max() / 4;

// Backtracking record for one DP state (v, mask).
struct Choice {
  enum class Kind : std::uint8_t { kLeaf, kMerge, kGrow } kind = Kind::kLeaf;
  std::uint32_t sub = 0;  // merge: one side of the partition
  NodeId from = -1;       // grow: predecessor node
};

}  // namespace

RoutingTree exact_rsmt(const Net& net) {
  const std::size_t n = net.degree();
  assert(n >= 2 && n <= kExactMaxDegree);
  const HananGrid grid(net.pins);
  const int nv = grid.num_nodes();
  const std::size_t nsinks = n - 1;
  const std::uint32_t full = (1u << nsinks) - 1;

  // dp[v][mask]: cheapest forest-free cost of a tree rooted anywhere that
  // connects node v with the sink set `mask`.
  std::vector<std::vector<Length>> dp(
      static_cast<std::size_t>(nv), std::vector<Length>(full + 1, kInf));
  std::vector<std::vector<Choice>> how(
      static_cast<std::size_t>(nv), std::vector<Choice>(full + 1));

  std::vector<NodeId> sink_node(nsinks);
  for (std::size_t i = 0; i < nsinks; ++i)
    sink_node[i] = grid.node_at(net.pins[i + 1]);

  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    // Merge step (or base case for singletons).
    for (int v = 0; v < nv; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if ((mask & (mask - 1)) == 0) {
        const std::size_t i = static_cast<std::size_t>(std::countr_zero(mask));
        dp[uv][mask] = grid.dist(static_cast<NodeId>(v), sink_node[i]);
        how[uv][mask] = Choice{Choice::Kind::kLeaf, 0, sink_node[i]};
        continue;
      }
      // Enumerate proper sub-partitions; fix the lowest bit in `sub` to
      // halve the enumeration.
      const std::uint32_t low = mask & (~mask + 1);
      for (std::uint32_t sub = (mask - 1) & mask; sub > 0;
           sub = (sub - 1) & mask) {
        if (!(sub & low)) continue;
        const std::uint32_t rest = mask ^ sub;
        if (rest == 0) continue;
        const Length cost = dp[uv][sub] == kInf || dp[uv][rest] == kInf
                                ? kInf
                                : dp[uv][sub] + dp[uv][rest];
        if (cost < dp[uv][mask]) {
          dp[uv][mask] = cost;
          how[uv][mask] = Choice{Choice::Kind::kMerge, sub, -1};
        }
      }
    }
    // Grow step: one L1-closure round (the grid metric satisfies the
    // triangle inequality, so a single round reaches the closure).
    std::vector<Length> merged(static_cast<std::size_t>(nv));
    for (int v = 0; v < nv; ++v)
      merged[static_cast<std::size_t>(v)] =
          dp[static_cast<std::size_t>(v)][mask];
    for (int v = 0; v < nv; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      for (int u = 0; u < nv; ++u) {
        if (u == v || merged[static_cast<std::size_t>(u)] == kInf) continue;
        const Length cost = merged[static_cast<std::size_t>(u)] +
                            grid.dist(static_cast<NodeId>(u),
                                      static_cast<NodeId>(v));
        if (cost < dp[uv][mask]) {
          dp[uv][mask] = cost;
          how[uv][mask] =
              Choice{Choice::Kind::kGrow, 0, static_cast<NodeId>(u)};
        }
      }
    }
  }

  // Reconstruct the edge list.
  std::vector<std::pair<Point, Point>> edges;
  const NodeId root = grid.node_at(net.pins[0]);
  std::vector<std::pair<NodeId, std::uint32_t>> stack{{root, full}};
  while (!stack.empty()) {
    const auto [v, mask] = stack.back();
    stack.pop_back();
    const Choice c = how[static_cast<std::size_t>(v)][mask];
    switch (c.kind) {
      case Choice::Kind::kLeaf:
        if (c.from != v) edges.emplace_back(grid.point(v), grid.point(c.from));
        break;
      case Choice::Kind::kMerge:
        stack.emplace_back(v, c.sub);
        stack.emplace_back(v, mask ^ c.sub);
        break;
      case Choice::Kind::kGrow:
        edges.emplace_back(grid.point(v), grid.point(c.from));
        stack.emplace_back(c.from, mask);
        break;
    }
  }

  RoutingTree t = RoutingTree::from_edges(net, edges);
  t.normalize();
  return t;
}

RoutingTree rsmt_heuristic(const Net& net) {
  RoutingTree t = rectilinear_mst(net);
  tree::refine(t, tree::RefineMode::kWirelength);
  return t;
}

RoutingTree rsmt(const Net& net) {
  if (net.degree() <= kExactMaxDegree && net.degree() >= 2)
    return exact_rsmt(net);
  return rsmt_heuristic(net);
}

}  // namespace patlabor::rsmt
