#include "patlabor/tree/refine.hpp"

#include <algorithm>
#include <limits>

#include "patlabor/geom/box.hpp"
#include "patlabor/obs/obs.hpp"

namespace patlabor::tree {

namespace {

constexpr Length kNegInf = std::numeric_limits<Length>::min() / 4;

Point median3(const Point& a, const Point& b, const Point& c) {
  auto med = [](geom::Coord x, geom::Coord y, geom::Coord z) {
    return std::max(std::min(x, y), std::min(std::max(x, y), z));
  };
  return Point{med(a.x, b.x, c.x), med(a.y, b.y, c.y)};
}

// Per-pass scratch arrays for O(1) delay evaluation of a re-parenting move.
struct DelayOracle {
  std::vector<Length> pl;    // root->node path lengths
  std::vector<Length> in;    // max pl over sink pins inside subtree(v)
  std::vector<Length> out;   // max pl over sink pins outside subtree(v)

  void build(const RoutingTree& t) {
    pl = t.path_lengths();
    const std::size_t n = t.num_nodes();
    in.assign(n, kNegInf);
    out.assign(n, kNegInf);
    const auto ch = t.children();
    // in[] by reverse topological order: process children before parents.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<std::size_t> stack{0};
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (std::int32_t c : ch[u]) stack.push_back(static_cast<std::size_t>(c));
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t u = *it;
      if (u >= 1 && t.is_pin(u)) in[u] = pl[u];
      for (std::int32_t c : ch[u])
        in[u] = std::max(in[u], in[static_cast<std::size_t>(c)]);
    }
    // out[] top-down.
    for (std::size_t u : order) {
      const Length self = (u >= 1 && t.is_pin(u)) ? pl[u] : kNegInf;
      // Prefix/suffix maxima over children to exclude one child at a time.
      const auto& cs = ch[u];
      std::vector<Length> pre(cs.size() + 1, kNegInf);
      std::vector<Length> suf(cs.size() + 1, kNegInf);
      for (std::size_t i = 0; i < cs.size(); ++i)
        pre[i + 1] =
            std::max(pre[i], in[static_cast<std::size_t>(cs[i])]);
      for (std::size_t i = cs.size(); i-- > 0;)
        suf[i] = std::max(suf[i + 1], in[static_cast<std::size_t>(cs[i])]);
      for (std::size_t i = 0; i < cs.size(); ++i) {
        const auto c = static_cast<std::size_t>(cs[i]);
        out[c] = std::max({out[u], self, pre[i], suf[i + 1]});
      }
    }
  }

  /// Delay if node v's subtree were shifted by `delta` (path lengths inside
  /// the subtree all change by delta; everything else is unchanged).
  Length delay_after_shift(std::size_t v, Length delta) const {
    const Length inside = in[v] == kNegInf ? kNegInf : in[v] + delta;
    return std::max<Length>(std::max(inside, out[v]), 0);
  }
};

}  // namespace

Length steinerize(RoutingTree& t) {
  Length saved = 0;
  std::uint64_t merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto ch = t.children();
    for (std::size_t p = 0; p < t.num_nodes(); ++p) {
      const auto& cs = ch[p];
      if (cs.size() < 2) continue;
      Length best_gain = 0;
      std::size_t bi = 0, bj = 0;
      Point best_s{};
      for (std::size_t i = 0; i < cs.size(); ++i) {
        for (std::size_t j = i + 1; j < cs.size(); ++j) {
          const Point s = median3(t.node(p),
                                  t.node(static_cast<std::size_t>(cs[i])),
                                  t.node(static_cast<std::size_t>(cs[j])));
          const Length gain = geom::l1(t.node(p), s);
          if (gain > best_gain) {
            best_gain = gain;
            bi = static_cast<std::size_t>(cs[i]);
            bj = static_cast<std::size_t>(cs[j]);
            best_s = s;
          }
        }
      }
      if (best_gain > 0) {
        // The median lies on monotone p->ci and p->cj paths, so both
        // children's path lengths (hence the delay) are unchanged while the
        // shared prefix p->s is now billed once instead of twice.
        const auto s =
            t.add_steiner(best_s, static_cast<std::int32_t>(p));
        t.set_parent(bi, static_cast<std::int32_t>(s));
        t.set_parent(bj, static_cast<std::int32_t>(s));
        saved += best_gain;
        ++merges;
        changed = true;
        break;  // children lists are stale; rescan
      }
    }
  }
  PL_COUNT("refine.steiner_merges", merges);
  return saved;
}

bool edge_substitution_pass(RoutingTree& t, RefineMode mode) {
  DelayOracle oracle;
  oracle.build(t);
  const Length w0 = t.wirelength();
  const Length d0 = t.delay();

  auto accept = [&](Length w, Length d) {
    switch (mode) {
      case RefineMode::kWirelength:
        return w < w0 && d <= d0;
      case RefineMode::kDelay:
        return d < d0 && w <= w0;
      case RefineMode::kEither:
        return (w < w0 && d <= d0) || (d < d0 && w <= w0);
    }
    return false;
  };

  struct Move {
    std::size_t v = 0;
    std::size_t attach_edge_child = 0;  // meaningful when via_edge
    bool via_edge = false;
    std::size_t new_parent = 0;  // node id when !via_edge
    Point q{};                   // split point when via_edge
    Length w = 0, d = 0;
  };
  bool have_move = false;
  std::uint64_t evaluated = 0;  // flushed once per pass, not per candidate
  Move best;
  // Preference: maximize the summed improvement.
  auto better = [&](const Move& m) {
    if (!have_move) return true;
    return (w0 - m.w) + (d0 - m.d) > (w0 - best.w) + (d0 - best.d);
  };

  for (std::size_t v = 1; v < t.num_nodes(); ++v) {
    const auto old_parent = static_cast<std::size_t>(t.parent(v));
    const Length old_len = geom::l1(t.node(v), t.node(old_parent));

    // Candidate 1: re-parent to any node outside subtree(v).
    for (std::size_t u = 0; u < t.num_nodes(); ++u) {
      if (u == old_parent || t.in_subtree(u, v)) continue;
      ++evaluated;
      const Length len = geom::l1(t.node(v), t.node(u));
      const Length w = w0 - old_len + len;
      const Length delta = (oracle.pl[u] + len) - oracle.pl[v];
      const Length d = oracle.delay_after_shift(v, delta);
      if (accept(w, d)) {
        Move m{v, 0, false, u, {}, w, d};
        if (better(m)) {
          best = m;
          have_move = true;
        }
      }
    }

    // Candidate 2: attach inside an existing edge (c -> parent(c)): split
    // the edge at the projection q of v onto BB(c, parent(c)); q lies on a
    // monotone realization, so splitting adds no wirelength.
    for (std::size_t c = 1; c < t.num_nodes(); ++c) {
      if (c == v) continue;
      const auto p = static_cast<std::size_t>(t.parent(c));
      if (t.in_subtree(c, v) || t.in_subtree(p, v)) continue;
      geom::BBox bb;
      bb.expand(t.node(c));
      bb.expand(t.node(p));
      const Point q = bb.project(t.node(v));
      if (q == t.node(c) || q == t.node(p)) continue;  // covered by case 1
      ++evaluated;
      const Length len = geom::l1(t.node(v), q);
      const Length w = w0 - old_len + len;
      const Length pl_q = oracle.pl[p] + geom::l1(t.node(p), q);
      const Length delta = (pl_q + len) - oracle.pl[v];
      const Length d = oracle.delay_after_shift(v, delta);
      if (accept(w, d)) {
        Move m{v, c, true, 0, q, w, d};
        if (better(m)) {
          best = m;
          have_move = true;
        }
      }
    }
  }

  PL_COUNT("refine.moves_evaluated", evaluated);
  if (!have_move) return false;
  PL_COUNT("refine.moves_accepted", 1);
  if (best.via_edge) {
    const auto c = best.attach_edge_child;
    const auto p = t.parent(c);
    const auto q = t.add_steiner(best.q, p);
    t.set_parent(c, static_cast<std::int32_t>(q));
    t.set_parent(best.v, static_cast<std::int32_t>(q));
  } else {
    t.set_parent(best.v, static_cast<std::int32_t>(best.new_parent));
  }
  return true;
}

void refine(RoutingTree& t, RefineMode mode, int max_passes) {
  t.normalize();
  steinerize(t);
  for (int pass = 0; pass < max_passes; ++pass) {
    if (!edge_substitution_pass(t, mode)) break;
    steinerize(t);
  }
  t.normalize();
}

std::vector<RoutingTree> refined_variants(const RoutingTree& t) {
  std::vector<RoutingTree> out;
  for (const RefineMode mode :
       {RefineMode::kWirelength, RefineMode::kDelay, RefineMode::kEither}) {
    RoutingTree v = t;
    refine(v, mode);
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace patlabor::tree
