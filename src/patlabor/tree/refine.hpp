// Post-processing passes shared by all tree constructions.
//
// The paper reuses SALT-style post-processing after every heuristic step
// ("We use post-processing techniques as in SALT to refine these issues"):
//   * Steinerization — merge sibling L-shapes through component-wise
//     medians; always wirelength-non-increasing and delay-neutral;
//   * edge substitution — re-parent a node (or attach it inside an existing
//     edge's bounding box) when that Pareto-improves the tree;
//   * normalization — drop dangling Steiner nodes, splice pass-throughs.
#pragma once

#include <vector>

#include "patlabor/tree/routing_tree.hpp"

namespace patlabor::tree {

/// Objective bias for edge substitution.
enum class RefineMode {
  kWirelength,  ///< accept moves that cut w without hurting d
  kDelay,       ///< accept moves that cut d without hurting w
  kEither,      ///< accept any weak Pareto improvement
};

/// One full Steinerization sweep (repeated to fixpoint internally):
/// for every node with >= 2 children, merges the best sibling pair through
/// the median Steiner point.  Returns the wirelength saved.
Length steinerize(RoutingTree& t);

/// One edge-substitution pass.  Returns true when a move was applied.
bool edge_substitution_pass(RoutingTree& t, RefineMode mode);

/// Full refinement pipeline: normalize, Steinerize, then edge substitution
/// until fixpoint (bounded by `max_passes`), normalize again.
void refine(RoutingTree& t, RefineMode mode, int max_passes = 8);

/// Produces Pareto-diverse refined variants of a tree (wirelength-biased
/// and delay-biased), used to enrich candidate sets in the local search.
std::vector<RoutingTree> refined_variants(const RoutingTree& t);

}  // namespace patlabor::tree
