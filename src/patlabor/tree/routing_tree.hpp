// Rooted rectilinear routing trees.
//
// A RoutingTree spans the net's pins (node 0 = source) plus optional Steiner
// nodes.  Edges connect a node to its parent and have length equal to the L1
// distance between their endpoints (each edge is realized as an L-shape /
// straight segment; per the paper's formulation, wirelength is the sum of
// edge lengths and delay is the maximum root-to-sink path length).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "patlabor/geom/net.hpp"
#include "patlabor/geom/point.hpp"
#include "patlabor/pareto/objective.hpp"

namespace patlabor::tree {

using geom::Length;
using geom::Net;
using geom::Point;

constexpr std::int32_t kNoParent = -1;

class RoutingTree {
 public:
  RoutingTree() = default;

  /// A star: every sink connected directly to the source.  The simplest
  /// valid tree; useful as a seed and in tests.
  static RoutingTree star(const Net& net);

  /// Builds a tree from an undirected edge list over points.  The edge set
  /// must connect all pins; orientation (parent pointers) is derived by a
  /// BFS from the source.  Points not equal to any pin become Steiner nodes.
  /// Degree-2 pass-through Steiner nodes are preserved as given.
  static RoutingTree from_edges(const Net& net,
                                std::span<const std::pair<Point, Point>> edges);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_pins() const { return num_pins_; }
  bool is_pin(std::size_t v) const { return v < num_pins_; }
  const Point& node(std::size_t v) const { return nodes_[v]; }
  std::int32_t parent(std::size_t v) const { return parent_[v]; }
  const std::vector<Point>& nodes() const { return nodes_; }
  const std::vector<std::int32_t>& parents() const { return parent_; }

  /// Adds a Steiner node; returns its index.
  std::size_t add_steiner(const Point& p, std::int32_t parent);

  /// Re-parents node v (caller must keep the structure acyclic).
  void set_parent(std::size_t v, std::int32_t p) { parent_[v] = p; }

  /// Moves a Steiner node (pins must not be moved).
  void move_node(std::size_t v, const Point& p);

  /// Total wirelength: sum of L1 edge lengths.
  Length wirelength() const;

  /// Delay: maximum L1 path length from the root to any sink pin.
  Length delay() const;

  /// Both objectives in one traversal.
  pareto::Objective objective() const;

  /// Root-to-node path length along tree edges for every node.
  std::vector<Length> path_lengths() const;

  /// Children adjacency (built on demand).
  std::vector<std::vector<std::int32_t>> children() const;

  /// True when v lies in the subtree rooted at u (u counts).
  bool in_subtree(std::size_t v, std::size_t u) const;

  /// Structural validity: parent pointers form a tree rooted at node 0
  /// covering all nodes, node 0 has no parent, pin count is consistent.
  /// Returns an empty string when valid, else a diagnostic.
  std::string validate() const;

  /// Removes Steiner leaves and unused nodes, splices out degree-2 Steiner
  /// pass-throughs whose removal does not change either objective, and
  /// compacts indices (pins keep indices 0..num_pins-1).
  void normalize();

  /// Order-independent structural hash (over the undirected edge set),
  /// for deduplicating topologies.
  std::uint64_t structural_hash() const;

 private:
  /// Removes nodes flagged dead (pins are never removed) and re-indexes.
  void compact(const std::vector<bool>& dead);

  std::vector<Point> nodes_;
  std::vector<std::int32_t> parent_;
  std::size_t num_pins_ = 0;
};

/// Convenience: evaluates a set of trees into objective vectors.
std::vector<pareto::Objective> objectives(std::span<const RoutingTree> trees);

}  // namespace patlabor::tree
