#include "patlabor/tree/routing_tree.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

namespace patlabor::tree {

RoutingTree RoutingTree::star(const Net& net) {
  RoutingTree t;
  t.nodes_ = net.pins;
  t.num_pins_ = net.pins.size();
  t.parent_.assign(t.nodes_.size(), 0);
  t.parent_[0] = kNoParent;
  return t;
}

RoutingTree RoutingTree::from_edges(
    const Net& net, std::span<const std::pair<Point, Point>> edges) {
  RoutingTree t;
  t.nodes_ = net.pins;
  t.num_pins_ = net.pins.size();

  // Map distinct points to node ids; pins get their fixed ids first.
  std::map<Point, std::int32_t> id;
  for (std::size_t i = 0; i < t.nodes_.size(); ++i) {
    // Duplicate pins map to the first occurrence; extra duplicates become
    // isolated nodes attached below.
    id.emplace(t.nodes_[i], static_cast<std::int32_t>(i));
  }
  auto intern = [&](const Point& p) -> std::int32_t {
    auto [it, inserted] = id.emplace(
        p, static_cast<std::int32_t>(t.nodes_.size()));
    if (inserted) t.nodes_.push_back(p);
    return it->second;
  };

  std::vector<std::vector<std::int32_t>> adj(t.nodes_.size());
  auto add_adj = [&](std::int32_t a, std::int32_t b) {
    const std::size_t need =
        static_cast<std::size_t>(std::max(a, b)) + 1;
    if (adj.size() < need) adj.resize(need);
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  for (const auto& [pa, pb] : edges) add_adj(intern(pa), intern(pb));
  adj.resize(t.nodes_.size());

  // Orient as a shortest-path tree from the source (O(V^2) Dijkstra).
  // For an acyclic edge set this is the unique orientation; when duplicate
  // or overlapping edges produced cycles in the union, the SPT orientation
  // guarantees path lengths (hence delay) never exceed those of any
  // intended derivation of the same edge set.
  t.parent_.assign(t.nodes_.size(), kNoParent);
  const std::size_t nn = t.nodes_.size();
  constexpr Length kUnreached = std::numeric_limits<Length>::max() / 4;
  std::vector<Length> dist(nn, kUnreached);
  std::vector<bool> seen(nn, false);
  dist[0] = 0;
  for (std::size_t round = 0; round < nn; ++round) {
    std::size_t u = nn;
    Length best = kUnreached;
    for (std::size_t v = 0; v < nn; ++v)
      if (!seen[v] && dist[v] < best) {
        best = dist[v];
        u = v;
      }
    if (u == nn) break;
    seen[u] = true;
    for (std::int32_t vi : adj[u]) {
      const auto v = static_cast<std::size_t>(vi);
      const Length nd = dist[u] + geom::l1(t.nodes_[u], t.nodes_[v]);
      if (nd < dist[v]) {
        dist[v] = nd;
        t.parent_[v] = static_cast<std::int32_t>(u);
      }
    }
  }
  // Unreached duplicates of pins (same coordinates) hang off their twin.
  for (std::size_t v = 1; v < t.num_pins_; ++v) {
    if (!seen[v]) {
      const auto it = id.find(t.nodes_[v]);
      if (it != id.end() && static_cast<std::size_t>(it->second) != v &&
          seen[static_cast<std::size_t>(it->second)]) {
        t.parent_[v] = it->second;
        seen[v] = true;
      }
    }
  }
  return t;
}

std::size_t RoutingTree::add_steiner(const Point& p, std::int32_t parent) {
  nodes_.push_back(p);
  parent_.push_back(parent);
  return nodes_.size() - 1;
}

void RoutingTree::move_node(std::size_t v, const Point& p) {
  assert(!is_pin(v));
  nodes_[v] = p;
}

Length RoutingTree::wirelength() const {
  Length w = 0;
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    if (parent_[v] != kNoParent)
      w += geom::l1(nodes_[v], nodes_[static_cast<std::size_t>(parent_[v])]);
  return w;
}

std::vector<Length> RoutingTree::path_lengths() const {
  std::vector<Length> pl(nodes_.size(), -1);
  pl[0] = 0;
  // Iterative resolution that tolerates arbitrary node order.
  std::vector<std::size_t> stack;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (pl[v] >= 0) continue;
    std::size_t u = v;
    while (pl[u] < 0 && parent_[u] != kNoParent) {
      stack.push_back(u);
      u = static_cast<std::size_t>(parent_[u]);
    }
    Length base = pl[u] >= 0 ? pl[u] : 0;
    while (!stack.empty()) {
      const std::size_t c = stack.back();
      stack.pop_back();
      base += geom::l1(nodes_[c], nodes_[static_cast<std::size_t>(parent_[c])]);
      pl[c] = base;
    }
  }
  return pl;
}

Length RoutingTree::delay() const {
  const auto pl = path_lengths();
  Length d = 0;
  for (std::size_t v = 1; v < num_pins_; ++v) d = std::max(d, pl[v]);
  return d;
}

pareto::Objective RoutingTree::objective() const {
  return pareto::Objective{wirelength(), delay()};
}

std::vector<std::vector<std::int32_t>> RoutingTree::children() const {
  std::vector<std::vector<std::int32_t>> ch(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    if (parent_[v] != kNoParent)
      ch[static_cast<std::size_t>(parent_[v])].push_back(
          static_cast<std::int32_t>(v));
  return ch;
}

bool RoutingTree::in_subtree(std::size_t v, std::size_t u) const {
  std::size_t cur = v;
  while (true) {
    if (cur == u) return true;
    if (parent_[cur] == kNoParent) return false;
    cur = static_cast<std::size_t>(parent_[cur]);
  }
}

std::string RoutingTree::validate() const {
  if (nodes_.size() != parent_.size()) return "nodes/parent size mismatch";
  if (num_pins_ == 0 || num_pins_ > nodes_.size()) return "bad pin count";
  if (parent_[0] != kNoParent) return "root has a parent";
  for (std::size_t v = 1; v < nodes_.size(); ++v) {
    if (parent_[v] == kNoParent) return "non-root node " + std::to_string(v) +
                                        " has no parent (disconnected)";
    if (parent_[v] < 0 ||
        static_cast<std::size_t>(parent_[v]) >= nodes_.size())
      return "parent index out of range at node " + std::to_string(v);
  }
  // Cycle check: every node must reach the root within |V| steps.
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    std::size_t cur = v;
    std::size_t steps = 0;
    while (parent_[cur] != kNoParent) {
      cur = static_cast<std::size_t>(parent_[cur]);
      if (++steps > nodes_.size()) return "cycle through node " +
                                          std::to_string(v);
    }
  }
  return {};
}

void RoutingTree::normalize() {
  // 1. Iteratively drop Steiner leaves.
  while (true) {
    std::vector<int> deg(nodes_.size(), 0);
    for (std::size_t v = 0; v < nodes_.size(); ++v)
      if (parent_[v] != kNoParent) ++deg[static_cast<std::size_t>(parent_[v])];
    bool changed = false;
    // Collect in one sweep; removal = mark dead, compact at the end.
    std::vector<bool> dead(nodes_.size(), false);
    for (std::size_t v = num_pins_; v < nodes_.size(); ++v) {
      if (deg[v] == 0) {
        dead[v] = true;
        changed = true;
      }
    }
    if (!changed) break;
    compact(dead);
    // deg recomputed next iteration.
  }
  // 2. Splice out degree-2 Steiner pass-throughs lying on a monotone path
  //    between parent and child (objective-neutral); off-path elbows are
  //    kept, they carry geometry.
  while (true) {
    auto ch = children();
    bool changed = false;
    for (std::size_t v = num_pins_; v < nodes_.size(); ++v) {
      if (ch[v].size() != 1 || parent_[v] == kNoParent) continue;
      const std::size_t p = static_cast<std::size_t>(parent_[v]);
      const std::size_t c = static_cast<std::size_t>(ch[v][0]);
      if (geom::l1(nodes_[p], nodes_[v]) + geom::l1(nodes_[v], nodes_[c]) ==
          geom::l1(nodes_[p], nodes_[c])) {
        parent_[c] = static_cast<std::int32_t>(p);
        std::vector<bool> dead(nodes_.size(), false);
        dead[v] = true;
        compact(dead);
        changed = true;
        break;  // indices shifted; restart the scan
      }
    }
    if (!changed) break;
  }
}

void RoutingTree::compact(const std::vector<bool>& dead) {
  std::vector<std::int32_t> remap(nodes_.size(), -1);
  std::size_t next = 0;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (v < num_pins_ || !dead[v]) remap[v] = static_cast<std::int32_t>(next++);
  }
  std::vector<Point> nn(next);
  std::vector<std::int32_t> np(next, kNoParent);
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (remap[v] < 0) continue;
    nn[static_cast<std::size_t>(remap[v])] = nodes_[v];
    if (parent_[v] != kNoParent) {
      const std::int32_t rp = remap[static_cast<std::size_t>(parent_[v])];
      assert(rp >= 0 && "parent of a live node was removed");
      np[static_cast<std::size_t>(remap[v])] = rp;
    }
  }
  nodes_ = std::move(nn);
  parent_ = std::move(np);
}

std::uint64_t RoutingTree::structural_hash() const {
  // Hash the multiset of undirected edges by coordinates.
  std::uint64_t h = 0x243F6A8885A308D3ULL ^ nodes_.size();
  std::vector<std::uint64_t> edge_hashes;
  edge_hashes.reserve(nodes_.size());
  geom::PointHash ph;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (parent_[v] == kNoParent) continue;
    const Point& a = nodes_[v];
    const Point& b = nodes_[static_cast<std::size_t>(parent_[v])];
    const std::uint64_t ha = ph(a < b ? a : b);
    const std::uint64_t hb = ph(a < b ? b : a);
    edge_hashes.push_back(ha * 0x100000001B3ULL ^ hb);
  }
  std::sort(edge_hashes.begin(), edge_hashes.end());
  for (std::uint64_t e : edge_hashes) h = (h ^ e) * 0x100000001B3ULL;
  return h;
}

std::vector<pareto::Objective> objectives(std::span<const RoutingTree> trees) {
  std::vector<pareto::Objective> out;
  out.reserve(trees.size());
  for (const RoutingTree& t : trees) out.push_back(t.objective());
  return out;
}

}  // namespace patlabor::tree
