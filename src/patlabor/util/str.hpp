// Small string/formatting helpers shared by the io and bench code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace patlabor::util {

/// Formats n with thousands separators ("1234567" -> "1,234,567").
std::string with_commas(std::int64_t n);

/// Fixed-precision double ("%.*f").
std::string fixed(double x, int digits);

/// Percentage with one decimal ("0.123" -> "12.3%").
std::string percent(double ratio);

/// Splits on a delimiter; empty fields preserved.
std::vector<std::string> split(const std::string& s, char delim);

/// Strict full-string numeric parsers: nullopt on empty input, any
/// leading/trailing junk, overflow, or (for the unsigned variant) a minus
/// sign — unlike atoll/atof, which silently return 0.
std::optional<std::uint64_t> parse_u64(std::string_view s);
std::optional<std::int64_t> parse_i64(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Reads environment variable REPRO_SCALE (default 1.0, clamped to
/// [1e-4, 1e4]); experiment harnesses multiply instance counts by it.
double repro_scale();

/// max(1, round(n * repro_scale())) — convenience for instance counts.
std::size_t scaled_count(std::size_t n);

}  // namespace patlabor::util
