// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components in the library (instance generators, the policy
// trainer, randomized local search tie-breaking) draw from patlabor::util::Rng
// so that every experiment is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace patlabor::util {

/// Small, fast, deterministic RNG (xoshiro256**).
///
/// We avoid std::mt19937 for two reasons: its state is large and its
/// distributions are not guaranteed to be identical across standard library
/// implementations.  All distribution logic here is self-contained, so a
/// seed reproduces the same stream on any platform.
class Rng {
 public:
  /// Seeds the generator; the default seed is arbitrary but fixed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double uniform01() noexcept;

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Standard normal via Box–Muller (no cached spare; stateless per call pair).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-net / per-thread use).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace patlabor::util
