#include "patlabor/util/timer.hpp"

#include <cstdio>
#include <ctime>

namespace patlabor::util {

double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return 0.0;
}

std::string format_duration(double seconds) {
  char buf[32];
  if (seconds < 0.0995) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fmin", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace patlabor::util
