#include "patlabor/util/timer.hpp"

#include <cstdio>

namespace patlabor::util {

std::string format_duration(double seconds) {
  char buf[32];
  if (seconds < 0.0995) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fmin", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace patlabor::util
