#include "patlabor/util/rng.hpp"

#include <cmath>

namespace patlabor::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand a single seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xA02BDBF7BB3C0A7ULL); }

}  // namespace patlabor::util
