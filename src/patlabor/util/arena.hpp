// Span-indexed append-only arenas for DP state storage.
//
// The Pareto-DW solvers index |V| × 2^(n-1) states, each holding two small
// Pareto sets.  Storing those as per-state std::vectors costs two heap
// allocations per state plus pointer-chasing on every read — the dominant
// cost of lookup-table generation.  An Arena<T> instead keeps ONE growing
// pool per record type; a state stores a 8-byte ArenaSpan {offset, count}
// into it.
//
// Lifetime rules (see DESIGN.md "SolutionSet & arena storage"):
//   * committed pools are append-only and live for the whole solve —
//     reconstruction walks spans of every mask, so nothing is freed per
//     mask wave; only scratch (candidate) buffers reset per state;
//   * spans store OFFSETS, never pointers: pool growth relocates the
//     backing storage, so raw pointers/references into a pool must not be
//     held across an append to the same pool.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace patlabor::util {

/// A {offset, count} window into an Arena pool.  Value-semantic and stable
/// across pool growth (unlike iterators/pointers).
struct ArenaSpan {
  std::uint32_t offset = 0;
  std::uint32_t count = 0;

  bool empty() const { return count == 0; }
  std::uint32_t size() const { return count; }
};

template <typename T>
class Arena {
 public:
  std::uint32_t size() const { return static_cast<std::uint32_t>(pool_.size()); }

  /// Start of a commit window: push_back entries, then since(mark).
  std::uint32_t mark() const { return size(); }

  void push_back(const T& v) { pool_.push_back(v); }
  void push_back(T&& v) { pool_.push_back(std::move(v)); }

  ArenaSpan since(std::uint32_t m) const {
    assert(m <= size());
    return ArenaSpan{m, size() - m};
  }

  std::span<const T> view(ArenaSpan s) const {
    assert(s.offset + s.count <= size());
    return {pool_.data() + s.offset, s.count};
  }

  const T& at(ArenaSpan s, std::uint32_t i) const {
    assert(i < s.count);
    return pool_[s.offset + i];
  }

  void reserve(std::size_t n) { pool_.reserve(n); }
  void clear() { pool_.clear(); }

 private:
  std::vector<T> pool_;
};

}  // namespace patlabor::util
