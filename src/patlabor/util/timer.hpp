// Wall-clock timing helpers used by the experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace patlabor::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration like the paper's Table II ("0s", "4.9s", "4.68h").
std::string format_duration(double seconds);

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID);
/// 0.0 on platforms without a per-thread CPU clock.
double thread_cpu_seconds() noexcept;

}  // namespace patlabor::util
