// XXH64: the 64-bit xxHash checksum (Yann Collet's public-domain
// algorithm), reimplemented here so the on-disk lookup-table format can
// carry per-section integrity checksums without an external dependency.
//
// This is a checksum, not a cryptographic hash: it detects torn writes,
// truncation and bit rot, nothing adversarial.  One-shot API only — the
// format code always has the whole section in (mapped) memory.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace patlabor::util {

namespace xxdetail {

inline constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t read64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // format and hosts are little-endian (static_assert below)
}

inline std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = std::rotl(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= round_step(0, val);
  return acc * kPrime1 + kPrime4;
}

}  // namespace xxdetail

static_assert(std::endian::native == std::endian::little,
              "lookup-table format code assumes a little-endian host");

/// One-shot XXH64 of a byte range.
inline std::uint64_t xxhash64(std::span<const std::uint8_t> data,
                              std::uint64_t seed = 0) {
  using namespace xxdetail;
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = round_step(v1, read64(p));
      v2 = round_step(v2, read64(p + 8));
      v3 = round_step(v3, read64(p + 16));
      v4 = round_step(v4, read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());
  while (p + 8 <= end) {
    h ^= round_step(0, read64(p));
    h = std::rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
    h = std::rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = std::rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace patlabor::util
