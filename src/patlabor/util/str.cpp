#include "patlabor/util/str.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace patlabor::util {

std::string with_commas(std::int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fixed(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

std::string percent(double ratio) { return fixed(ratio * 100.0, 1) + "%"; }

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {

template <class T>
std::optional<T> parse_integer(std::string_view s) {
  T v{};
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v, 10);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  return parse_integer<std::uint64_t>(s);
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  return parse_integer<std::int64_t>(s);
}

std::optional<double> parse_double(std::string_view s) {
  // strtod accepts leading whitespace, "inf"/"nan" and hex floats; reject
  // the whitespace form explicitly and require full consumption.
  if (s.empty() || std::isspace(static_cast<unsigned char>(s.front())))
    return std::nullopt;
  const std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(v))
    return std::nullopt;
  return v;
}

double repro_scale() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (!(v > 0.0)) return 1.0;
  return std::clamp(v, 1e-4, 1e4);
}

std::size_t scaled_count(std::size_t n) {
  const double scaled = std::round(static_cast<double>(n) * repro_scale());
  return static_cast<std::size_t>(std::max(1.0, scaled));
}

}  // namespace patlabor::util
